//===- serve/Service.cpp --------------------------------------*- C++ -*-===//

#include "serve/Service.h"

#include "driver/Isolate.h"
#include "support/ExitCodes.h"
#include "support/Hash.h"
#include "support/Interleave.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <csignal>
#include <sstream>

#include <unistd.h>

using namespace gcsafe;
using namespace gcsafe::serve;

std::string
gcsafe::serve::canonicalFlagString(const driver::RequestOptions &O) {
  // Every field that can change the outcome of a compile, in a fixed
  // order. Adding a field here is a cache-format change: old and new
  // processes simply stop sharing entries, which is always safe.
  std::ostringstream OS;
  OS << "mode=" << driver::compileModeToken(O.Mode)
     << ";machine=" << O.MachineName << ";run=" << (O.Run ? 1 : 0)
     << ";verify=" << static_cast<int>(O.Verify)
     << ";verify_ir=" << (O.VerifyIREachPass ? 1 : 0)
     << ";self_heal=" << (O.SelfHeal ? 1 : 0)
     << ";rung=" << driver::optRungName(O.StartRung)
     << ";pass_deadline=" << O.PassDeadlineNs
     << ";fail_inject=" << O.FailInjectSpec
     << ";corrupt_kind=" << O.CorruptKind
     << ";gc_period=" << O.GcInstructionPeriod
     << ";gc_alloc_trigger=" << O.GcAllocTrigger
     << ";gc_call_period=" << O.GcCallPeriod
     << ";gc_deadline=" << O.GcDeadlineNs
     << ";vm_deadline=" << O.VmDeadlineNs
     << ";deadline=" << O.DeadlineNs
     << ";no_opt1=" << (O.Annot.SkipCopies ? 0 : 1)
     << ";no_opt2=" << (O.Annot.SpecializeIncDec ? 0 : 1)
     << ";slow_bases=" << (O.Annot.PreferSlowBases ? 1 : 0)
     << ";at_calls_only="
     << (O.Annot.Trigger == annotate::GcTrigger::AtCallsOnly ? 1 : 0);
  return OS.str();
}

support::Json gcsafe::serve::serveResultToJson(const ServeResult &R) {
  using support::Json;
  Json J = Json::object();
  J["ok"] = Json::boolean(R.Ok);
  J["exit_code"] = Json::integer(int64_t(R.ExitCode));
  J["degraded"] = Json::boolean(R.Degraded);
  J["rung"] = Json::string(R.Rung);
  Json Q = Json::array();
  for (const std::string &P : R.Quarantined)
    Q.push(Json::string(P));
  J["quarantined"] = std::move(Q);
  if (!R.Status.empty())
    J["status"] = Json::string(R.Status);
  if (!R.Error.empty())
    J["error"] = Json::string(R.Error);
  if (R.HasReport)
    J["report"] = R.Report;
  if (R.HasLint)
    J["lint"] = R.Lint;
  return J;
}

bool gcsafe::serve::serveResultFromJson(const support::Json &J,
                                        ServeResult &Out) {
  if (!J.isObject() || !J.has("exit_code") || !J.has("ok"))
    return false;
  Out.Ok = J.get("ok")->asBool();
  Out.ExitCode = static_cast<int>(J.get("exit_code")->asInt());
  if (const support::Json *D = J.get("degraded"))
    Out.Degraded = D->asBool();
  if (const support::Json *R = J.get("rung"))
    Out.Rung = R->asString();
  if (const support::Json *Q = J.get("quarantined"))
    for (size_t I = 0; I < Q->size(); ++I)
      Out.Quarantined.push_back(Q->at(I).asString());
  if (const support::Json *S = J.get("status"))
    Out.Status = S->asString();
  if (const support::Json *E = J.get("error"))
    Out.Error = E->asString();
  if (const support::Json *R = J.get("report")) {
    Out.Report = *R;
    Out.HasReport = true;
  }
  if (const support::Json *L = J.get("lint")) {
    Out.Lint = *L;
    Out.HasLint = true;
  }
  return true;
}

namespace {

/// Pool worker index of the current thread (0 = a caller thread, e.g.
/// compile() or a test): stamps flight-recorder events so the Chrome
/// export gets one track per worker.
thread_local uint32_t CurrentWorker = 0;

/// A request id reduced to filename-safe characters for the flight-dump
/// path (the client controls the id; it must not traverse directories).
std::string fsSafeId(const std::string &Rid) {
  std::string Out = Rid.empty() ? "unnamed" : Rid;
  for (char &C : Out)
    if (!std::isalnum(static_cast<unsigned char>(C)) && C != '.' &&
        C != '_' && C != '-')
      C = '_';
  return Out;
}

/// Lifts a driver outcome into the service's result shape.
ServeResult resultFromOutcome(driver::RequestOutcome &&Outcome) {
  ServeResult R;
  R.Ok = Outcome.Ok;
  R.ExitCode = Outcome.ExitCode;
  R.Degraded = Outcome.Degraded;
  R.Rung = Outcome.Rung;
  R.Quarantined = std::move(Outcome.Quarantined);
  R.Error = std::move(Outcome.Error);
  R.Report = std::move(Outcome.Report);
  R.HasReport = Outcome.HasReport;
  R.Lint = std::move(Outcome.Lint);
  R.HasLint = Outcome.HasLint;
  return R;
}

ServeResult typedResult(const char *Status, int ExitCode, std::string Error) {
  ServeResult R;
  R.Ok = false;
  R.Status = Status;
  R.ExitCode = ExitCode;
  R.Error = std::move(Error);
  return R;
}

/// Clamps every watchdog to the remaining wall budget, so a request with
/// a deadline cannot out-sleep it inside the VM or the GC.
void clampWatchdogs(driver::RequestOptions &O, uint64_t DeadlineAtNs) {
  if (!DeadlineAtNs)
    return;
  uint64_t Now = support::monotonicNowNs();
  uint64_t Remain = DeadlineAtNs > Now ? DeadlineAtNs - Now : 1;
  auto Clamp = [Remain](uint64_t &V) { V = V ? std::min(V, Remain) : Remain; };
  Clamp(O.VmDeadlineNs);
  Clamp(O.GcDeadlineNs);
  if (O.SelfHeal)
    Clamp(O.PassDeadlineNs);
}

} // namespace

CompileService::CompileService(ServiceOptions O)
    : Opts(O), Cache(O.CacheMaxEntries), StartNs(support::monotonicNowNs()),
      Trace(O.TraceCapacity ? O.TraceCapacity : 4096),
      Flight(O.FlightCapacity ? O.FlightCapacity : 2048) {
  if (!Opts.StoreDir.empty()) {
    Store::Options SO;
    SO.Dir = Opts.StoreDir;
    SO.Fingerprint = driver::keyFingerprint();
    SO.Inject = [this](const std::string &Site) { return injectFault(Site); };
    SO.Trace = [this](const char *Name, uint64_t Value, uint64_t Aux,
                      std::string Detail) {
      support::RankedGuard Lock(TraceMu);
      Trace.emit("store", Name, Value, Aux, std::move(Detail));
    };
    Disk.reset(new Store(std::move(SO)));
    // Scrub before the first worker can read: nothing unvalidated is
    // ever reachable from a request.
    ScrubReport = Disk->scrub();
  }
  unsigned N = Opts.Workers ? Opts.Workers : 1;
  Pool.reserve(N);
  for (unsigned I = 0; I < N; ++I)
    Pool.emplace_back([this, I] {
      CurrentWorker = I + 1; // 0 is reserved for caller threads.
      workerLoop();
    });
}

CompileService::~CompileService() { stop(); }

void CompileService::stop() {
  {
    support::RankedGuard Lock(QueueMu);
    if (Stopping.load(std::memory_order_relaxed))
      return;
    Stopping.store(true, std::memory_order_release);
  }
  QueueCv.notifyAll();
  for (std::thread &T : Pool)
    T.join();
}

void CompileService::drain() {
  {
    support::RankedGuard Lock(QueueMu);
    if (Draining.load(std::memory_order_relaxed))
      return;
    Draining.store(true, std::memory_order_release);
  }
  traceEmit("service.drain", 0, 0, "");
}

void CompileService::waitIdle() {
  support::RankedLock Lock(QueueMu);
  IdleCv.wait(Lock, [this]() GCSAFE_REQUIRES(QueueMu) {
    return Queue.empty() && Active == 0;
  });
}

ServiceHealth CompileService::health() const {
  // A point-in-time sample built entirely from the lock-free gauges: a
  // supervisor probing readiness never contends with admission.
  ServiceHealth H;
  H.Workers = static_cast<unsigned>(Pool.size());
  H.QueueDepth = QueueDepth.load(std::memory_order_acquire);
  H.QueueMax = Opts.QueueMax;
  H.Draining = Draining.load(std::memory_order_acquire);
  H.Stopping = Stopping.load(std::memory_order_acquire);
  H.Isolate = Opts.Isolate;
  H.Ready = !H.Stopping && !H.Draining &&
            (!Opts.QueueMax || H.QueueDepth < Opts.QueueMax);
  return H;
}

bool CompileService::injectFault(const std::string &Site) {
  if (!Opts.Faults)
    return false;
  support::RankedGuard Lock(FaultMu);
  return Opts.Faults->shouldFail(Opts.Faults->siteId(Site));
}

void CompileService::workerLoop() {
  for (;;) {
    std::packaged_task<ServeResult()> Task;
    {
      support::RankedLock Lock(QueueMu);
      QueueCv.wait(Lock, [this]() GCSAFE_REQUIRES(QueueMu) {
        return Stopping.load(std::memory_order_relaxed) || !Queue.empty();
      });
      if (Queue.empty()) {
        if (Stopping.load(std::memory_order_relaxed))
          return;
        continue;
      }
      Task = std::move(Queue.front());
      Queue.pop_front();
      QueueDepth.store(Queue.size(), std::memory_order_release);
      ++Active;
    }
    GCSAFE_INTERLEAVE_POINT("serve.queue.pop");
    Task();
    {
      support::RankedGuard Lock(QueueMu);
      --Active;
    }
    IdleCv.notifyAll();
  }
}

std::future<ServeResult>
CompileService::submit(driver::RequestOptions Request, bool UseCache) {
  // The deadline clock starts at submission: time spent queued counts
  // against the request's budget — so does the queue-wait histogram.
  uint64_t SubmitNs = support::monotonicNowNs();
  uint64_t DeadlineAtNs = Request.DeadlineNs ? SubmitNs + Request.DeadlineNs : 0;
  bool Injected = injectFault("serve.queue.full");
  std::string Name = Request.Name;
  std::string TraceId = assignRequestId(Request);
  std::string Rid = Request.RequestId;

  std::packaged_task<ServeResult()> Task(
      [this, Request = std::move(Request), UseCache, DeadlineAtNs, SubmitNs,
       TraceId]() mutable {
        return compileAt(Request, UseCache, DeadlineAtNs, SubmitNs, TraceId);
      });
  std::future<ServeResult> F = Task.get_future();

  const char *Shed = nullptr;
  std::string Why;
  {
    support::RankedGuard Lock(QueueMu);
    if (Stopping.load(std::memory_order_relaxed)) {
      Shed = "shutdown";
      Why = "the service is shutting down";
    } else if (Draining.load(std::memory_order_relaxed)) {
      Shed = "draining";
      Why = "the service is draining";
    } else if (Injected) {
      Shed = "overloaded";
      Why = "the submit queue is full (injected serve.queue.full)";
    } else if (Opts.QueueMax && Queue.size() >= Opts.QueueMax) {
      Shed = "overloaded";
      Why = "the submit queue is full (" + std::to_string(Opts.QueueMax) +
            " requests deep)";
    } else {
      Queue.push_back(std::move(Task));
      size_t Depth = Queue.size();
      // The gauges shadow Queue under QueueMu; peak's read-modify-write
      // is safe because every writer holds the lock — the atomics exist
      // for the lock-free snapshot readers.
      QueueDepth.store(Depth, std::memory_order_release);
      if (Depth > QueuePeak.load(std::memory_order_relaxed))
        QueuePeak.store(Depth, std::memory_order_release);
    }
  }
  if (!Shed) {
    QueueCv.notifyOne();
    return F;
  }

  // Shed: resolve the caller's future immediately with a typed result.
  // The discarded task's future is never observed; the request never
  // counts as executed (serve.requests counts work, serve.queue.shed
  // counts refusals).
  QueueShed.fetch_add(1, std::memory_order_relaxed);
  traceEmit("queue.shed", 0, 0, TraceId + " " + Name + ": " + Why);
  Flight.record("serve", "queue.shed", TraceId, 0, CurrentWorker);
  std::promise<ServeResult> P;
  ServeResult R =
      typedResult(Shed, support::ExitOverloaded, "request shed: " + Why);
  R.RequestId = Rid;
  P.set_value(std::move(R));
  return P.get_future();
}

std::string CompileService::assignRequestId(driver::RequestOptions &Request) {
  uint64_t Seq = RequestSeq.fetch_add(1, std::memory_order_relaxed) + 1;
  if (Request.RequestId.empty())
    Request.RequestId = "r-" + std::to_string(Seq);
  return Request.RequestId + "#" + std::to_string(Seq);
}

void CompileService::traceEmit(const char *Name, uint64_t Value,
                               uint64_t Aux, std::string Detail) {
  support::RankedGuard Lock(TraceMu);
  Trace.emit("serve", Name, Value, Aux, std::move(Detail));
}

void CompileService::countResult(const ServeResult &R) {
  if (R.Ok)
    ResponsesOk.fetch_add(1, std::memory_order_relaxed);
  else
    ResponsesError.fetch_add(1, std::memory_order_relaxed);
  if (R.Degraded)
    ResponsesDegraded.fetch_add(1, std::memory_order_relaxed);
}

ServeResult CompileService::compile(const driver::RequestOptions &Request,
                                    bool UseCache) {
  driver::RequestOptions Req = Request;
  uint64_t SubmitNs = support::monotonicNowNs();
  uint64_t DeadlineAtNs = Req.DeadlineNs ? SubmitNs + Req.DeadlineNs : 0;
  std::string TraceId = assignRequestId(Req);
  return compileAt(Req, UseCache, DeadlineAtNs, SubmitNs, TraceId);
}

ServeResult CompileService::compileAt(const driver::RequestOptions &Request,
                                      bool UseCache, uint64_t DeadlineAtNs,
                                      uint64_t SubmitNs,
                                      const std::string &TraceId) {
  const uint32_t Worker = CurrentWorker;
  uint64_t BeginNs = support::monotonicNowNs();
  Requests.fetch_add(1, std::memory_order_relaxed);
  traceEmit("request.begin", 0, 0, TraceId + " " + Request.Name);
  Flight.record("serve", "request.begin", TraceId, 0, Worker);

  uint64_t QueueWaitNs = BeginNs > SubmitNs ? BeginNs - SubmitNs : 0;
  {
    support::RankedGuard Lock(HistMu);
    HistQueueWait.record(QueueWaitNs);
  }
  Flight.record("serve", "queue.wait", TraceId, QueueWaitNs, Worker);

  // Every exit path below funnels through this: the echoed request id,
  // the response counters, the end-to-end histogram (its count therefore
  // equals serve.requests exactly — the chaos harness asserts this), and
  // the request.end markers.
  auto Finish = [&](ServeResult R, uint64_t CachedAux) {
    R.RequestId = Request.RequestId;
    countResult(R);
    uint64_t E2ENs = support::monotonicNowNs() - SubmitNs;
    {
      support::RankedGuard Lock(HistMu);
      HistE2E.record(E2ENs);
    }
    Flight.record("serve", "e2e", TraceId, E2ENs, Worker);
    traceEmit("request.end", uint64_t(R.ExitCode), CachedAux,
              TraceId + " " + Request.Name);
    Flight.record("serve", "request.end", TraceId, uint64_t(R.ExitCode),
                  Worker);
    return R;
  };

  // A request that expired while queued never starts — and never gets a
  // chance to insert anything into the cache or the memo.
  if (DeadlineAtNs && support::monotonicNowNs() > DeadlineAtNs) {
    DeadlineExpired.fetch_add(1, std::memory_order_relaxed);
    traceEmit("request.deadline", 0, 0, TraceId + " " + Request.Name);
    Flight.record("serve", "request.deadline", TraceId, 0, Worker);
    return Finish(typedResult("deadline", support::ExitWatchdogTimeout,
                              "deadline expired before the compile started"),
                  0);
  }

  // Request-private state; the only shared pieces are content-keyed.
  driver::RequestOptions Opts2 = Request;
  Opts2.Memo = &Memo;
  clampWatchdogs(Opts2, DeadlineAtNs);
  driver::RequestContext Ctx(std::move(Opts2));

  ServeResult Result;
  std::string ParseError;
  bool Parsed = Ctx.parse(ParseError);
  if (Parsed) {
    // The cache key hashes what the compiler will actually consume: the
    // preprocessed (annotated) source, the mode and the canonical flag
    // string. Two textually different flag spellings with the same
    // canonical form share an entry; any outcome-relevant difference
    // changes the key (docs/SERVING.md "Cache invalidation"). The flag
    // string is built from the request *as submitted* — the clamped
    // watchdogs above are wall-clock residue, not request identity. The
    // hasher is seeded with the build fingerprint (key-format version +
    // optimizer pass roster), so a binary whose output could differ keys
    // into a disjoint namespace: an upgrade can never replay a stale
    // payload, from memory or from the durable store.
    support::ContentHasher H(driver::keyFingerprint());
    H.update(Ctx.preprocessedSource());
    H.update(canonicalFlagString(Request));
    Result.CacheKey = H.hex();
  }

  bool WantCache = UseCache && Opts.CacheEnabled && !Result.CacheKey.empty();

  // Releases single-flight leadership on every exit path below.
  struct FlightGuard {
    CompileService *S = nullptr;
    std::string Key;
    ~FlightGuard() {
      if (!S)
        return;
      {
        support::RankedGuard L(S->InFlightMu);
        S->InFlight.erase(Key);
      }
      S->InFlightCv.notifyAll();
    }
  } Leader;

  if (WantCache) {
    // Lookup / single-flight loop: hit → replay; miss with no one else
    // compiling this key → become the leader and compile; miss while a
    // leader is in flight → wait and re-check (the leader's insert turns
    // the re-check into a hit, so concurrent identical requests cost one
    // compile, not N). A leader whose result was uncacheable wakes the
    // waiters into electing the next leader, so progress is guaranteed.
    bool LookupTimed = false;
    bool StoreProbed = false;
    for (;;) {
      std::string Payload;
      uint64_t LookupStartNs = support::monotonicNowNs();
      bool Hit = Cache.lookup(Result.CacheKey, Payload);
      if (!LookupTimed) {
        // Only the first probe counts: re-checks after waiting out a
        // single-flight leader measure the leader, not the cache.
        LookupTimed = true;
        uint64_t LookupNs = support::monotonicNowNs() - LookupStartNs;
        {
          support::RankedGuard Lock(HistMu);
          HistCacheLookup.record(LookupNs);
        }
        Flight.record("serve", "cache.lookup", TraceId, LookupNs, Worker);
      }
      if (Hit) {
        support::Json J;
        std::string JsonError;
        ServeResult Warm;
        if (support::Json::parse(Payload, J, JsonError) &&
            serveResultFromJson(J, Warm)) {
          Warm.CacheKey = Result.CacheKey;
          Warm.Cached = true;
          traceEmit("cache.hit", 0, 0, TraceId + " " + Result.CacheKey);
          Flight.record("serve", "cache.hit", TraceId, 0, Worker);
          return Finish(std::move(Warm), 1);
        }
        // An unparseable payload cannot happen via insert(); treat it as
        // a miss and overwrite below.
      }
      // Memory miss: read through to the durable store (once — a re-loop
      // after a store hit or a single-flight wait consults memory only).
      // A validated disk entry is promoted into the memory cache and
      // replayed through the normal hit path above, so a warm-restart
      // response is byte-identical to the response that was cached.
      if (Disk && !StoreProbed) {
        StoreProbed = true;
        std::string DiskPayload;
        if (Disk->lookup(Result.CacheKey, DiskPayload)) {
          Cache.insert(Result.CacheKey, DiskPayload);
          Flight.record("serve", "store.hit", TraceId, 0, Worker);
          continue;
        }
      }
      support::RankedLock L(InFlightMu);
      if (!InFlight.count(Result.CacheKey)) {
        InFlight.insert(Result.CacheKey);
        Leader.S = this;
        Leader.Key = Result.CacheKey;
        break;
      }
      // Counted by the hook while the lock is still held, so "observed
      // waiting" can never race the leader's release+notify: the leader
      // needs this mutex to erase its key, and we do not drop it between
      // the in-flight check and the wait below.
      GCSAFE_INTERLEAVE_POINT("serve.singleflight.wait");
      if (DeadlineAtNs) {
        uint64_t Now = support::monotonicNowNs();
        if (Now >= DeadlineAtNs ||
            InFlightCv.waitFor(L, std::chrono::nanoseconds(
                                      DeadlineAtNs - Now)) ==
                std::cv_status::timeout) {
          // The budget ran out while queued behind the leader: same
          // typed expiry as a deadline that fired anywhere else.
          L.unlock();
          DeadlineExpired.fetch_add(1, std::memory_order_relaxed);
          traceEmit("request.deadline", 0, 0, TraceId + " " + Request.Name);
          Flight.record("serve", "request.deadline", TraceId, 0, Worker);
          ServeResult R =
              typedResult("deadline", support::ExitWatchdogTimeout,
                          "deadline expired while waiting for an "
                          "in-flight identical compile");
          R.CacheKey = Result.CacheKey;
          return Finish(std::move(R), 0);
        }
      } else {
        InFlightCv.wait(L);
      }
    }
    // The leader's window: it holds single-flight for this key but has
    // not started (let alone published) the compile. The re-election
    // test parks the first leader here and kills it with the
    // serve.worker.crash failpoint below.
    GCSAFE_INTERLEAVE_POINT("serve.singleflight.elect");
    traceEmit("cache.miss", 0, 0, TraceId + " " + Result.CacheKey);
    Flight.record("serve", "cache.miss", TraceId, 0, Worker);
  }

  if (Opts.Isolate) {
    std::string Key = Result.CacheKey;
    uint64_t IsoStartNs = support::monotonicNowNs();
    Result = isolatedCompile(Request, DeadlineAtNs, TraceId);
    uint64_t IsoNs = support::monotonicNowNs() - IsoStartNs;
    {
      support::RankedGuard Lock(HistMu);
      HistIsolate.record(IsoNs);
    }
    Flight.record("serve", "isolate", TraceId, IsoNs, Worker);
    Result.CacheKey = Key;
  } else if (injectFault("serve.worker.crash")) {
    // An in-process worker cannot survive a real SIGSEGV, so without
    // Opts.Isolate the crash failpoint models the *disposition* instead:
    // the same typed result, telemetry and flight dump as a sandboxed
    // crash whose retries ran out. The payoff is determinism — a leader
    // can be killed between its election and its publish without a fork,
    // which is how tests/test_race.cpp drives single-flight re-election.
    traceEmit("worker.crash", 0, 0, TraceId + " " + Request.Name);
    Flight.record("serve", "worker.crash", TraceId, 0, Worker);
    if (!Opts.FlightDir.empty())
      Flight.dumpToFile(Opts.FlightDir + "/flightrec-" +
                            fsSafeId(Request.RequestId) + ".json",
                        "crash", Request.RequestId, TraceId, 0);
    std::string Key = Result.CacheKey;
    Result = typedResult("crashed", support::ExitWorkerCrash,
                         "worker crash injected (serve.worker.crash)");
    Result.CacheKey = Key;
  } else {
    uint64_t ExecStartNs = support::monotonicNowNs();
    ServeResult Executed = resultFromOutcome(Ctx.execute());
    uint64_t ExecNs = support::monotonicNowNs() - ExecStartNs;
    {
      support::RankedGuard Lock(HistMu);
      HistCompile.record(ExecNs);
    }
    Flight.record("serve", "compile", TraceId, ExecNs, Worker);
    if (Opts.StitchTraces)
      // Nest the compiler's own spans under this request in the Chrome
      // export. The driver ring's categories/names are string literals,
      // so storing them by pointer in the flight ring is safe.
      for (const support::TraceEvent &E : Ctx.trace().snapshot())
        Flight.record(E.Category, E.Name, TraceId, E.Value, Worker,
                      E.TimeNs);
    Executed.CacheKey = Result.CacheKey;
    Result = std::move(Executed);
  }

  // The service-side deadline guard: whatever the request was doing when
  // its budget ran out, the caller gets a typed deadline result.
  bool Expired = DeadlineAtNs && support::monotonicNowNs() > DeadlineAtNs;
  if (Expired && Result.Status.empty()) {
    DeadlineExpired.fetch_add(1, std::memory_order_relaxed);
    traceEmit("request.deadline", uint64_t(Result.ExitCode), 0,
              TraceId + " " + Request.Name);
    Flight.record("serve", "request.deadline", TraceId, 0, Worker);
    std::string Key = Result.CacheKey;
    Result = typedResult("deadline", support::ExitWatchdogTimeout,
                         "deadline expired during the compile");
    Result.CacheKey = Key;
  }

  // Never cache a service-level disposition (shed/deadline/crash) or a
  // timing-dependent watchdog expiry of a deadline request: cache entries
  // must be pure functions of content, and an expired request must not
  // poison the cache for the identical request asked with more budget.
  // The cached payload is written before RequestId is stamped on the
  // result, so warm replays stay byte-identical across requests.
  bool Cacheable = WantCache && Result.Status.empty() &&
                   !(DeadlineAtNs &&
                     Result.ExitCode == support::ExitWatchdogTimeout);
  if (Cacheable) {
    std::string Payload = serveResultToJson(Result).dump(0);
    Cache.insert(Result.CacheKey, Payload);
    // Write through to the durable store: the exact bytes the memory
    // cache replays, so a restart replays them too. Failures are the
    // store's problem (counted, possibly degrading it) — never this
    // request's; the response is already committed above.
    if (Disk)
      Disk->insert(Result.CacheKey, Payload);
    // Between the insert and the FlightGuard's release: a waiter woken
    // here must still re-check the cache, not assume the key vanished.
    GCSAFE_INTERLEAVE_POINT("serve.singleflight.publish");
  }

  return Finish(std::move(Result), 0);
}

ServeResult
CompileService::isolatedCompile(const driver::RequestOptions &Request,
                                uint64_t DeadlineAtNs,
                                const std::string &TraceId) {
  driver::OptRung Rung = Request.StartRung;
  bool Descended = false;
  // Terminal "crashed" results dump the flight ring next to the response
  // (gcsafe-flightrec-v1): the post-mortem names the victim request and
  // carries its last events. The dump runs in the parent, outside signal
  // context, but reuses the same async-signal-safe writer.
  auto DumpCrash = [&](int Signal) {
    if (Opts.FlightDir.empty())
      return;
    Flight.dumpToFile(Opts.FlightDir + "/flightrec-" +
                          fsSafeId(Request.RequestId) + ".json",
                      "crash", Request.RequestId, TraceId, Signal);
  };
  for (unsigned Attempt = 0;; ++Attempt) {
    IsolateRequests.fetch_add(1, std::memory_order_relaxed);
    // The crash failpoint is drawn in the parent (the injector is shared,
    // service-wide state the child must not touch) and the verdict is
    // carried across the fork by value.
    bool InjectCrash = injectFault("serve.worker.crash");

    uint64_t TimeoutMs = Opts.IsolateTimeoutMs;
    if (DeadlineAtNs) {
      uint64_t Now = support::monotonicNowNs();
      uint64_t RemainMs =
          DeadlineAtNs > Now ? (DeadlineAtNs - Now) / 1000000ull + 1 : 1;
      TimeoutMs = TimeoutMs ? std::min(TimeoutMs, RemainMs) : RemainMs;
    }

    driver::RequestOptions ChildOpts = Request;
    // The child is a fresh single-threaded process: it must not touch the
    // shared memo (its mutex may be held by another worker at fork time),
    // and its updates would die with it anyway.
    ChildOpts.Memo = nullptr;
    clampWatchdogs(ChildOpts, DeadlineAtNs);
    if (Descended) {
      ChildOpts.SelfHeal = true;
      ChildOpts.StartRung = Rung;
    }

    driver::SandboxOutcome Out = driver::runInSandbox(
        [&ChildOpts, InjectCrash](int Fd) -> int {
          if (InjectCrash)
            raise(SIGSEGV);
          driver::RequestContext Ctx(std::move(ChildOpts));
          ServeResult R = resultFromOutcome(Ctx.execute());
          std::string Payload = serveResultToJson(R).dump(0);
          size_t Off = 0;
          while (Off < Payload.size()) {
            ssize_t W = write(Fd, Payload.data() + Off, Payload.size() - Off);
            if (W <= 0)
              return support::ExitError;
            Off += static_cast<size_t>(W);
          }
          return support::ExitSuccess;
        },
        TimeoutMs);

    switch (Out.St) {
    case driver::SandboxOutcome::Status::SpawnError:
      DumpCrash(0);
      return typedResult("crashed", support::ExitWorkerCrash,
                         "could not spawn an isolated worker");
    case driver::SandboxOutcome::Status::TimedOut: {
      IsolateTimeouts.fetch_add(1, std::memory_order_relaxed);
      traceEmit("worker.timeout", Out.DurationMs, Attempt,
                TraceId + " " + Request.Name);
      Flight.record("serve", "worker.timeout", TraceId, Out.DurationMs,
                    CurrentWorker);
      bool RequestDeadline =
          DeadlineAtNs && support::monotonicNowNs() > DeadlineAtNs;
      return typedResult(
          "deadline", support::ExitWatchdogTimeout,
          RequestDeadline
              ? "isolated worker killed at the request deadline"
              : "isolated worker killed after " +
                    std::to_string(Out.DurationMs) + "ms (--isolate-timeout)");
    }
    case driver::SandboxOutcome::Status::Signaled: {
      IsolateCrashes.fetch_add(1, std::memory_order_relaxed);
      traceEmit("worker.crash", uint64_t(Out.Signal), Attempt,
                TraceId + " " + Request.Name);
      Flight.record("serve", "worker.crash", TraceId, uint64_t(Out.Signal),
                    CurrentWorker);
      bool Expired = DeadlineAtNs && support::monotonicNowNs() > DeadlineAtNs;
      if (Attempt < Opts.IsolateRetries && !Expired) {
        // The batch driver's recovery move, per request: re-enter the
        // degradation ladder one rung lower — a crash at full
        // optimization often clears at a simpler one.
        IsolateRetries.fetch_add(1, std::memory_order_relaxed);
        Rung = driver::lowerRung(Rung);
        Descended = true;
        continue;
      }
      DumpCrash(Out.Signal);
      return typedResult(
          "crashed", support::ExitWorkerCrash,
          "isolated worker killed by signal " + std::to_string(Out.Signal) +
              " on attempt " + std::to_string(Attempt + 1) + " at rung " +
              driver::optRungName(Descended ? Rung : Request.StartRung));
    }
    case driver::SandboxOutcome::Status::Exited:
      break;
    }

    support::Json J;
    std::string JsonError;
    ServeResult R;
    if (!support::Json::parse(Out.Payload, J, JsonError) ||
        !serveResultFromJson(J, R)) {
      DumpCrash(0);
      return typedResult("crashed", support::ExitWorkerCrash,
                         "isolated worker exited (status " +
                             std::to_string(Out.ExitCode) +
                             ") without a result payload");
    }
    return R;
  }
}

support::Stats CompileService::statsSnapshot() const {
  support::Stats S;
  S.set("serve.workers", Pool.size());
  S.set("serve.uptime_ns", support::monotonicNowNs() - StartNs);
  S.set("serve.requests", Requests.load(std::memory_order_relaxed));
  S.set("serve.responses.ok", ResponsesOk.load(std::memory_order_relaxed));
  S.set("serve.responses.error",
        ResponsesError.load(std::memory_order_relaxed));
  S.set("serve.responses.degraded",
        ResponsesDegraded.load(std::memory_order_relaxed));
  // depth is a point-in-time sample, not a lifetime total: report it
  // with Gauge kind so consumers (Stats::merge, --stats printing) never
  // treat it as a monotonic counter. peak and shed stay true counters.
  // Both gauges are lock-free mirrors of the queue (written under
  // QueueMu, sampled here with acquire), so snapshotting never blocks
  // admission.
  S.setFloat("serve.queue.depth",
             static_cast<double>(QueueDepth.load(std::memory_order_acquire)));
  S.set("serve.queue.peak", QueuePeak.load(std::memory_order_acquire));
  S.set("serve.queue.shed", QueueShed.load(std::memory_order_relaxed));
  S.set("serve.deadline.expired",
        DeadlineExpired.load(std::memory_order_relaxed));
  S.set("serve.isolate.requests",
        IsolateRequests.load(std::memory_order_relaxed));
  S.set("serve.isolate.crashes",
        IsolateCrashes.load(std::memory_order_relaxed));
  S.set("serve.isolate.retries",
        IsolateRetries.load(std::memory_order_relaxed));
  S.set("serve.isolate.timeouts",
        IsolateTimeouts.load(std::memory_order_relaxed));
  CacheStats C = Cache.stats();
  S.set("serve.cache.hits", C.Hits);
  S.set("serve.cache.misses", C.Misses);
  S.set("serve.cache.insertions", C.Insertions);
  S.set("serve.cache.evictions", C.Evictions);
  S.set("serve.cache.entries", C.Entries);
  S.set("serve.cache.bytes", C.Bytes);
  S.set("serve.verify_memo.hits", Memo.hits());
  S.set("serve.verify_memo.misses", Memo.misses());
  S.set("serve.verify_memo.entries", Memo.entries());
  // Always present (zeros without a store) so every consumer of the
  // schema sees one shape; degraded is a 0/1 gauge, not a counter.
  StoreStats D = Disk ? Disk->stats() : StoreStats();
  S.set("serve.store.hits", D.Hits);
  S.set("serve.store.misses", D.Misses);
  S.set("serve.store.writes", D.Writes);
  S.set("serve.store.scrubbed", D.Scrubbed);
  S.set("serve.store.quarantined", D.Quarantined);
  S.set("serve.store.io_errors", D.IoErrors);
  S.setFloat("serve.store.degraded", D.Degraded ? 1.0 : 0.0);
  return S;
}

std::vector<support::TraceEvent> CompileService::traceSnapshot() const {
  support::RankedGuard Lock(TraceMu);
  return Trace.snapshot();
}

support::Json CompileService::metricsSnapshot() const {
  using support::Json;
  Json M = Json::object();
  M["schema"] = Json::string("gcsafe-metrics-v1");
  uint64_t Now = support::monotonicNowNs();
  uint64_t UptimeNs = Now > StartNs ? Now - StartNs : 1;
  uint64_t Req = Requests.load(std::memory_order_relaxed);
  M["uptime_ns"] = Json::integer(UptimeNs);
  M["requests"] = Json::integer(Req);
  M["rate_rps"] =
      Json::number(double(Req) * 1e9 / static_cast<double>(UptimeNs));
  // depth is a *sampled gauge* — the value at snapshot time, not a
  // lifetime total like peak and shed (which are true counters).
  Json Q = Json::object();
  Q["depth"] =
      Json::integer(uint64_t(QueueDepth.load(std::memory_order_acquire)));
  Q["peak"] =
      Json::integer(uint64_t(QueuePeak.load(std::memory_order_acquire)));
  Q["shed"] = Json::integer(QueueShed.load(std::memory_order_relaxed));
  M["queue"] = std::move(Q);
  Json Stages = Json::object();
  {
    support::RankedGuard Lock(HistMu);
    Stages["queue_wait"] = HistQueueWait.toJson();
    Stages["cache_lookup"] = HistCacheLookup.toJson();
    Stages["compile"] = HistCompile.toJson();
    Stages["isolate"] = HistIsolate.toJson();
    Stages["e2e"] = HistE2E.toJson();
  }
  M["stages"] = std::move(Stages);
  // Mirrors serve.store.* in statsSnapshot(): always present, zeros
  // without a store, degraded as a 0/1 gauge.
  StoreStats D = Disk ? Disk->stats() : StoreStats();
  Json St = Json::object();
  St["hits"] = Json::integer(D.Hits);
  St["misses"] = Json::integer(D.Misses);
  St["writes"] = Json::integer(D.Writes);
  St["scrubbed"] = Json::integer(D.Scrubbed);
  St["quarantined"] = Json::integer(D.Quarantined);
  St["io_errors"] = Json::integer(D.IoErrors);
  St["degraded"] = Json::integer(uint64_t(D.Degraded ? 1 : 0));
  M["store"] = std::move(St);
  return M;
}
