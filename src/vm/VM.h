//===- vm/VM.h - IR interpreter over the conservative GC -------*- C++ -*-===//
//
// Part of the gcsafe project, a reproduction of Boehm, "Simple
// Garbage-Collector-Safety" (PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes an ir::Module on a simulated machine whose heap is the
/// conservative collector from src/gc. The GC-roots are exactly what the
/// paper lists — "the machine stack, registers, and statically allocated
/// memory": every frame's register file, the VM stack (frame slots), and
/// the globals area are scanned conservatively.
///
/// Collections can be triggered adversarially: after every allocation
/// (collector AllocCountTrigger) and/or at a fixed instruction period
/// (GcInstructionPeriod), modeling the paper's "asynchronously triggered
/// collector" under which all its transformations must stay safe. Freed
/// objects are poisoned, and loads from freed heap slots are detected and
/// reported — this is how premature collection becomes observable.
///
/// The VM also accounts cycles under a MachineModel (including a register
/// pressure penalty) and runs the checked-mode CheckSameObj instruction
/// against the collector's page table, recording violations like the
/// paper's GC_same_obj.
///
//===----------------------------------------------------------------------===//

#ifndef GCSAFE_VM_VM_H
#define GCSAFE_VM_VM_H

#include "gc/Check.h"
#include "gc/Collector.h"
#include "ir/IR.h"
#include "vm/Machine.h"

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace gcsafe {
namespace vm {

struct VMOptions {
  MachineModel Model = sparc10();

  /// Collector: collect after this many allocations (0 = bytes-based only).
  size_t GcAllocTrigger = 0;
  /// Collect every N executed instructions (0 = off). The adversarial
  /// asynchronous scheduler.
  uint64_t GcInstructionPeriod = 0;
  /// Collect every N call instructions (0 = off): the paper's
  /// optimization-4 regime where "garbage collections can be triggered
  /// only at procedure calls".
  uint64_t GcCallPeriod = 0;
  /// Collector recognizes heap-stored interior pointers (paper default).
  /// false = the Extensions section's base-pointers-only mode.
  bool AllInteriorPointers = true;

  uint64_t MaxInstructions = 2000000000;
  size_t StackSize = 1 << 20;
  size_t MaxOutputBytes = 4 << 20;

  /// Wall-clock watchdogs (docs/ROBUSTNESS.md §5), 0 = off. A stuck run
  /// is a fault, not a hang: exceeding VmDeadlineNs (whole-run budget,
  /// checked every ~512 instructions) or GcDeadlineNs (per-collection
  /// mark+sweep budget, via CollectorStats::GcDeadlineExceeded) stops the
  /// VM with RunResult::WatchdogTimeout set.
  uint64_t VmDeadlineNs = 0;
  uint64_t GcDeadlineNs = 0;

  /// Cost KEEP_LIVE as a real external call (the paper's naive
  /// implementation: "a call to an external function whose implementation
  /// is unavailable to the compiler ... terribly inefficient"). Semantics
  /// are unchanged; only the cycle charge differs.
  bool KeepLiveCostsCall = false;

  /// Record loads/stores that touch freed (swept) heap objects.
  bool DetectFreedAccess = true;
  /// Stop execution at the first checked-mode violation.
  bool HaltOnCheckViolation = false;

  /// Per-collection event records kept by the collector (0 = off).
  size_t GcEventLimit = 256;
  /// Optional event sink shared with the collector: GC phase events plus
  /// a cat="vm" run summary are emitted here.
  support::TraceBuffer *Trace = nullptr;

  /// Collector OOM policy. The VM itself always uses the typed-result
  /// allocation surface, so exhaustion becomes a structured run error
  /// ("out of memory: ...") rather than a process abort; this still
  /// controls how hard the collector tries to recover first.
  gc::OomPolicy GcOomPolicy = gc::OomPolicy::Graceful;
  /// Recovery retries after the emergency collection.
  unsigned GcOomRetries = 3;
  /// Hard cap on collector heap pages (0 = unlimited).
  size_t GcMaxHeapPages = 0;
  /// Run a heap-integrity audit after every collection.
  bool GcAuditEachCollection = false;
  /// Optional failpoint registry passed through to the collector.
  support::FaultInjector *Faults = nullptr;

  /// Optional profiler (docs/OBSERVABILITY.md §6). When set, its
  /// HeapProfile is attached to the collector and every allocation builtin
  /// is tagged with its (function, flat instruction index) site; when
  /// Profile->SamplePeriodCycles > 0 the VM additionally records one cycle
  /// sample (call stack + leaf instruction kind) per period.
  support::Profiler *Profile = nullptr;
};

struct RunResult {
  bool Ok = false;
  std::string Error;
  std::string Output;
  long ExitCode = 0;
  /// The run was stopped by a deadline watchdog (VmDeadlineNs /
  /// GcDeadlineNs); Error says which. Maps to ExitWatchdogTimeout.
  bool WatchdogTimeout = false;

  uint64_t InstructionsExecuted = 0;
  uint64_t Cycles = 0;
  uint64_t SpillCycles = 0;

  // Cycle attribution: where the total went. The paper's slowdown numbers
  // are exactly (Cycles_safe - Cycles_base) / Cycles_base; the split below
  // says how much of a run is safety machinery rather than user code.
  uint64_t KeepLiveExecuted = 0; ///< KEEP_LIVE pseudo-ops executed.
  uint64_t KeepLiveCycles = 0;   ///< Their cycle charge (nonzero only when
                                 ///< KeepLiveCostsCall models the naive
                                 ///< external-call implementation).
  uint64_t KillsExecuted = 0;    ///< Register-death Kill pseudo-ops.
  uint64_t CheckCycles = 0;      ///< GC_same_obj / GC_*_incr checking.
  uint64_t AllocatorCycles = 0;  ///< Allocation entry points.

  uint64_t Collections = 0;
  uint64_t AllocCount = 0;
  uint64_t AllocBytes = 0;

  uint64_t ChecksPerformed = 0;
  uint64_t CheckViolations = 0;

  /// Loads/stores that touched a freed heap object — evidence of a
  /// GC-safety failure (premature collection).
  uint64_t FreedAccesses = 0;

  /// Snapshot of the collector's counters (including per-collection
  /// CollectionEvent records) at the end of the run.
  gc::CollectorStats Gc;

  /// Cycles not attributed to safety, checking, allocation or modeled
  /// spills — the paper's "user code".
  uint64_t userCycles() const {
    uint64_t Overhead =
        KeepLiveCycles + CheckCycles + AllocatorCycles + SpillCycles;
    return Cycles > Overhead ? Cycles - Overhead : 0;
  }
};

class VM {
public:
  VM(const ir::Module &M, VMOptions Options = VMOptions());
  ~VM();
  VM(const VM &) = delete;
  VM &operator=(const VM &) = delete;

  /// Runs __globals_init (if present) then main. Reusable only once.
  RunResult run();

  gc::Collector &collector() { return *C; }

private:
  struct Frame {
    const ir::Function *F = nullptr;
    std::vector<uint64_t> Regs;
    uint64_t FrameBase = 0;
    uint32_t Block = 0;
    uint32_t IP = 0;
    uint32_t RetDst = ir::NoReg; ///< Caller register for the return value.
  };

  uint64_t evalValue(const Frame &Fr, const ir::Value &V) const;
  void pushFrame(const ir::Function &F, const std::vector<uint64_t> &Args,
                 uint32_t RetDst);
  void enterBlock(Frame &Fr, uint32_t Block);
  unsigned instructionCycles(const ir::Instruction &I) const;
  const std::vector<unsigned> &pressurePenalties(const ir::Function &F);
  void runBuiltin(Frame &Fr, const ir::Instruction &I);
  void tagAllocSite(const Frame &Fr, const ir::Instruction &I,
                    const char *Kind);
  void recordCycleSample(const ir::Function *Leaf, const ir::Instruction &I);
  bool checkMemoryAccess(uint64_t Addr, const char *What);
  void fail(const std::string &Message);

  const ir::Module &M;
  VMOptions Opts;
  std::unique_ptr<gc::Collector> C;
  std::unique_ptr<gc::PointerCheck> Check;

  std::vector<char> Globals;
  std::vector<char> Stack;
  uint64_t StackTop = 0;
  std::vector<Frame> Frames;

  RunResult Result;
  bool Halted = false;
  uint64_t Prng = 0x9E3779B97F4A7C15ull;
  uint64_t CallsExecuted = 0;

  std::unordered_map<const ir::Function *, std::vector<unsigned>>
      PressureCache;

  // Profiling state (unused when Opts.Profile is null). Site ids are
  // cached per allocation instruction; flat instruction indices come from
  // per-function block-offset prefix sums, cached like PressureCache.
  std::unordered_map<const ir::Instruction *, size_t> SiteCache;
  std::unordered_map<const ir::Function *, std::vector<uint32_t>>
      BlockOffsetCache;
  uint64_t LastSampleCycles = 0;
};

} // namespace vm
} // namespace gcsafe

#endif // GCSAFE_VM_VM_H
