//===- vm/Machine.h - Machine cost models ----------------------*- C++ -*-===//
//
// Part of the gcsafe project, a reproduction of Boehm, "Simple
// Garbage-Collector-Safety" (PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cycle-cost models standing in for the paper's three measurement
/// machines: a Weitek-processor SPARCstation 2 (SunOS 4.1.4), a
/// SPARCstation 10 (Solaris 2.5), and a Pentium 90 (Linux 1.81). The models
/// capture the *relative* properties the paper's analysis turns on:
///
///  * fused addressing is free (`ld [x+y]` costs one load) — so code that
///    cannot fuse because of a KEEP_LIVE pays an extra ALU op and register;
///  * calls are expensive relative to straight-line code — so checked mode
///    (a GC_same_obj call per pointer operation) is several hundred percent;
///  * loads/stores are relatively cheaper on the Pentium — so fully
///    debuggable (-g) code, which is all loads and stores, degrades less
///    there (paper: 17-41% vs 33-56% on the SPARCs);
///  * the Pentium has far fewer registers — the paper uses this to argue
///    the overhead is *not* register pressure ("one would have expected
///    much more substantial performance degradation on the Intel Pentium
///    machine"); our pressure model charges spills when live values exceed
///    the register file.
///
//===----------------------------------------------------------------------===//

#ifndef GCSAFE_VM_MACHINE_H
#define GCSAFE_VM_MACHINE_H

#include <string>

namespace gcsafe {
namespace vm {

struct MachineModel {
  std::string Name;
  unsigned CyclesAlu = 1;
  unsigned CyclesMov = 1;
  unsigned CyclesMul = 4;
  unsigned CyclesDiv = 20;
  unsigned CyclesFloat = 3;
  unsigned CyclesLoad = 2;
  unsigned CyclesStore = 2;
  unsigned CyclesBranch = 2;
  unsigned CyclesCall = 8;   ///< Call/return overhead (each way charged once).
  unsigned CyclesCheck = 14; ///< GC_same_obj: call + page-table lookup.
  unsigned NumRegs = 24;     ///< Allocatable integer registers.
  unsigned CyclesSpill = 2;  ///< Per excess live value per block entry.

  /// Library time per allocation call (allocator + amortized collector).
  /// The paper's standard libraries "were not preprocessed": library time
  /// is constant across compilation modes and dilutes the measured
  /// slowdowns, which is why gcc -g is only 25-56% slower than -O on these
  /// allocation-intensive programs.
  unsigned CyclesAllocator = 600;
};

/// SPARCstation 2: slow memory, expensive calls, big register file.
inline MachineModel sparc2() {
  MachineModel M;
  M.Name = "SPARCstation 2";
  M.CyclesAlu = 1;
  M.CyclesMul = 5;
  M.CyclesDiv = 25;
  M.CyclesFloat = 4;
  M.CyclesLoad = 2;
  M.CyclesStore = 3;
  M.CyclesBranch = 2;
  M.CyclesCall = 10;
  M.CyclesCheck = 95;
  M.NumRegs = 24;
  M.CyclesSpill = 3;
  M.CyclesAllocator = 800;
  return M;
}

/// SPARCstation 10: faster memory, still call-heavy.
inline MachineModel sparc10() {
  MachineModel M;
  M.Name = "SPARCstation 10";
  M.CyclesAlu = 1;
  M.CyclesMul = 3;
  M.CyclesDiv = 12;
  M.CyclesFloat = 2;
  M.CyclesLoad = 2;
  M.CyclesStore = 2;
  M.CyclesBranch = 1;
  M.CyclesCall = 8;
  M.CyclesCheck = 80;
  M.NumRegs = 24;
  M.CyclesSpill = 2;
  M.CyclesAllocator = 650;
  return M;
}

/// Pentium 90: cheap memory traffic, few registers, cheaper calls.
inline MachineModel pentium90() {
  MachineModel M;
  M.Name = "Pentium 90";
  M.CyclesAlu = 1;
  M.CyclesMul = 2;
  M.CyclesDiv = 10;
  M.CyclesFloat = 3;
  M.CyclesLoad = 1;
  M.CyclesStore = 1;
  M.CyclesBranch = 1;
  M.CyclesCall = 5;
  M.CyclesCheck = 60;
  M.NumRegs = 6;
  M.CyclesSpill = 1;
  M.CyclesAllocator = 900;
  return M;
}

} // namespace vm
} // namespace gcsafe

#endif // GCSAFE_VM_MACHINE_H
