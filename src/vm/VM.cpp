//===- vm/VM.cpp ----------------------------------------------*- C++ -*-===//

#include "vm/VM.h"

#include "opt/CFG.h"
#include "support/Stats.h"
#include "support/Trace.h"

#include <cassert>
#include <cinttypes>
#include <cstdio>
#include <cstring>

using namespace gcsafe;
using namespace gcsafe::vm;
using namespace gcsafe::ir;

namespace {
double bitsToDouble(uint64_t Bits) {
  double D;
  std::memcpy(&D, &Bits, sizeof(D));
  return D;
}
uint64_t doubleToBits(double D) {
  uint64_t Bits;
  std::memcpy(&Bits, &D, sizeof(Bits));
  return Bits;
}
constexpr int64_t FuncPtrBase = 0x10000;
} // namespace

VM::VM(const Module &MIn, VMOptions Options) : M(MIn), Opts(std::move(Options)) {
  gc::CollectorConfig GC;
  GC.AllocCountTrigger = Opts.GcAllocTrigger;
  GC.PoisonOnFree = true;
  GC.AllInteriorPointers = Opts.AllInteriorPointers;
  GC.EventLimit = Opts.GcEventLimit;
  GC.Trace = Opts.Trace;
  GC.Oom = Opts.GcOomPolicy;
  GC.OomRetries = Opts.GcOomRetries;
  GC.MaxHeapPages = Opts.GcMaxHeapPages;
  GC.AuditEachCollection = Opts.GcAuditEachCollection;
  GC.Faults = Opts.Faults;
  GC.CollectDeadlineNs = Opts.GcDeadlineNs;
  GC.Profile = Opts.Profile ? &Opts.Profile->Heap : nullptr;
  C = std::make_unique<gc::Collector>(GC);
  Check = std::make_unique<gc::PointerCheck>(*C);

  Globals.assign(M.GlobalsSize ? M.GlobalsSize : 1, 0);
  for (const GlobalVar &G : M.Globals)
    if (!G.InitData.empty())
      std::memcpy(Globals.data() + G.Offset, G.InitData.data(),
                  G.InitData.size());
  Stack.assign(Opts.StackSize, 0);

  // GC-roots: "the machine stack, registers, and statically allocated
  // memory".
  C->addRootScanner([this](gc::RootVisitor &V) {
    V.visitRange(Globals.data(), Globals.data() + Globals.size());
    V.visitRange(Stack.data(), Stack.data() + StackTop);
    for (const Frame &Fr : Frames)
      if (!Fr.Regs.empty())
        V.visitRange(Fr.Regs.data(), Fr.Regs.data() + Fr.Regs.size());
  });
}

VM::~VM() = default;

void VM::fail(const std::string &Message) {
  if (!Halted) {
    Result.Ok = false;
    Result.Error = Message;
    Halted = true;
  }
}

uint64_t VM::evalValue(const Frame &Fr, const Value &V) const {
  switch (V.Kind) {
  case Value::ValueKind::None:
    return 0;
  case Value::ValueKind::Reg:
    return Fr.Regs[V.Reg];
  case Value::ValueKind::Imm:
    return static_cast<uint64_t>(V.Imm);
  case Value::ValueKind::FImm:
    return doubleToBits(V.FImm);
  }
  return 0;
}

const std::vector<unsigned> &VM::pressurePenalties(const Function &F) {
  auto It = PressureCache.find(&F);
  if (It != PressureCache.end())
    return It->second;
  std::vector<unsigned> Penalties(F.Blocks.size(), 0);
  opt::CFGInfo CFG(F);
  opt::Liveness LV(F, CFG);
  for (uint32_t B = 0; B < F.Blocks.size(); ++B) {
    unsigned P = LV.maxPressure(B);
    Penalties[B] =
        P > Opts.Model.NumRegs ? (P - Opts.Model.NumRegs) * Opts.Model.CyclesSpill
                               : 0;
  }
  return PressureCache.emplace(&F, std::move(Penalties)).first->second;
}

void VM::enterBlock(Frame &Fr, uint32_t Block) {
  Fr.Block = Block;
  Fr.IP = 0;
  unsigned Penalty = pressurePenalties(*Fr.F)[Block];
  Result.Cycles += Penalty;
  Result.SpillCycles += Penalty;
}

void VM::pushFrame(const Function &F, const std::vector<uint64_t> &Args,
                   uint32_t RetDst) {
  Frame Fr;
  Fr.F = &F;
  Fr.Regs.assign(F.NumRegs, 0);
  for (size_t I = 0; I < F.ParamRegs.size() && I < Args.size(); ++I)
    Fr.Regs[F.ParamRegs[I]] = Args[I];
  uint64_t Base = (StackTop + 15) & ~uint64_t(15);
  if (Base + F.FrameSize > Stack.size()) {
    fail("VM stack overflow");
    return;
  }
  std::memset(Stack.data() + Base, 0, F.FrameSize);
  Fr.FrameBase = Base;
  StackTop = Base + F.FrameSize;
  Fr.RetDst = RetDst;
  Frames.push_back(std::move(Fr));
  enterBlock(Frames.back(), 0);
  Result.Cycles += Opts.Model.CyclesCall;
}

unsigned VM::instructionCycles(const Instruction &I) const {
  const MachineModel &MM = Opts.Model;
  switch (I.Op) {
  case Opcode::KeepLive: // empty assembly sequence (or a real call in the
                         // naive implementation)
    return Opts.KeepLiveCostsCall ? MM.CyclesCall : 0;
  case Opcode::Kill:
  case Opcode::Nop:
    return 0;
  case Opcode::Mov:
    return MM.CyclesMov;
  case Opcode::Mul:
    return MM.CyclesMul;
  case Opcode::DivS: case Opcode::DivU:
  case Opcode::RemS: case Opcode::RemU:
    return MM.CyclesDiv;
  case Opcode::FAdd: case Opcode::FSub: case Opcode::FMul: case Opcode::FDiv:
  case Opcode::FNeg:
  case Opcode::FCmpEq: case Opcode::FCmpNe: case Opcode::FCmpLt:
  case Opcode::FCmpLe: case Opcode::FCmpGt: case Opcode::FCmpGe:
  case Opcode::SIToFP: case Opcode::FPToSI:
    return MM.CyclesFloat;
  case Opcode::Load:
  case Opcode::LoadIdx: // the fused addition is free
    return MM.CyclesLoad;
  case Opcode::Store:
  case Opcode::StoreIdx:
    return MM.CyclesStore;
  case Opcode::Jmp:
  case Opcode::Br:
    return MM.CyclesBranch;
  case Opcode::Ret:
  case Opcode::Call:
    return MM.CyclesCall;
  case Opcode::CheckSameObj:
    return MM.CyclesCheck;
  default:
    return MM.CyclesAlu;
  }
}

void VM::tagAllocSite(const Frame &Fr, const Instruction &I,
                      const char *Kind) {
  if (!Opts.Profile)
    return;
  auto It = SiteCache.find(&I);
  if (It == SiteCache.end()) {
    auto OffIt = BlockOffsetCache.find(Fr.F);
    if (OffIt == BlockOffsetCache.end()) {
      std::vector<uint32_t> Offsets;
      Offsets.reserve(Fr.F->Blocks.size());
      uint32_t Off = 0;
      for (const BasicBlock &B : Fr.F->Blocks) {
        Offsets.push_back(Off);
        Off += static_cast<uint32_t>(B.Insts.size());
      }
      OffIt = BlockOffsetCache.emplace(Fr.F, std::move(Offsets)).first;
    }
    // Fr.IP was already advanced past I by the dispatch loop.
    uint32_t Flat = OffIt->second[Fr.Block] + Fr.IP - 1;
    size_t Site = Opts.Profile->Heap.internSite(Fr.F->Name, Flat, Kind);
    It = SiteCache.emplace(&I, Site).first;
  }
  C->setAllocSite(It->second);
}

namespace {
/// Sampling-profiler category for the executing instruction: the cycle
/// attribution buckets of RunResult, refined with memory/branch/call/alu.
const char *sampleKind(const Instruction &I) {
  switch (I.Op) {
  case Opcode::KeepLive:
    return "keep_live";
  case Opcode::CheckSameObj:
    return "checks";
  case Opcode::Kill:
    return "kill";
  case Opcode::Load:
  case Opcode::LoadIdx:
  case Opcode::Store:
  case Opcode::StoreIdx:
  case Opcode::AddrLocal:
  case Opcode::AddrGlobal:
    return "memory";
  case Opcode::Jmp:
  case Opcode::Br:
    return "branch";
  case Opcode::Call:
    switch (I.BuiltinCallee) {
    case Builtin::GcMalloc:
    case Builtin::GcMallocAtomic:
    case Builtin::Malloc:
    case Builtin::Calloc:
    case Builtin::Realloc:
      return "allocator";
    case Builtin::SameObj:
    case Builtin::PreIncr:
    case Builtin::PostIncr:
      return "checks";
    default:
      return "call";
    }
  case Opcode::Ret:
    return "call";
  default:
    return "alu";
  }
}
} // namespace

void VM::recordCycleSample(const Function *Leaf, const Instruction &I) {
  uint64_t Weight = Result.Cycles - LastSampleCycles;
  LastSampleCycles = Result.Cycles;
  // Stack at sample time; the executing function may already have returned
  // (Ret) or called out (Call), so force it to be the leaf.
  std::string Stack;
  for (const Frame &Fr : Frames) {
    if (!Stack.empty())
      Stack += ';';
    Stack += Fr.F->Name;
  }
  if (Frames.empty() || Frames.back().F != Leaf) {
    if (!Stack.empty())
      Stack += ';';
    Stack += Leaf->Name;
  }
  Opts.Profile->Cycles.addSample(Stack, Leaf->Name, sampleKind(I), Weight);
}

bool VM::checkMemoryAccess(uint64_t Addr, const char *What) {
  if (Addr < 0x1000) {
    fail(std::string("null/small-pointer dereference in ") + What);
    return false;
  }
  if (Opts.DetectFreedAccess &&
      C->pointsToFreedObject(reinterpret_cast<const void *>(Addr)))
    ++Result.FreedAccesses;
  return true;
}

void VM::runBuiltin(Frame &Fr, const Instruction &I) {
  auto Arg = [&](size_t Idx) -> uint64_t {
    return Idx < I.Args.size() ? evalValue(Fr, I.Args[Idx]) : 0;
  };
  auto SetDst = [&](uint64_t V) {
    if (I.Dst != NoReg)
      Fr.Regs[I.Dst] = V;
  };

  // Exhaustion is a structured run error, never a crash: the typed
  // allocation surface turns a failed request into RunResult::Error.
  auto AllocOrFail = [&](uint64_t Size, bool Atomic,
                         const char *What) -> void * {
    gc::AllocResult R = Atomic ? C->tryAllocateAtomic(Size)
                               : C->tryAllocate(Size);
    if (!R.ok())
      fail(std::string("out of memory: ") + What + "(" +
           std::to_string(Size) + " bytes) failed: " +
           gc::allocStatusName(R.Status));
    return R.Ptr;
  };

  switch (I.BuiltinCallee) {
  case Builtin::GcMalloc:
  case Builtin::Malloc: {
    Result.Cycles += Opts.Model.CyclesAllocator;
    Result.AllocatorCycles += Opts.Model.CyclesAllocator;
    uint64_t Size = Arg(0);
    ++Result.AllocCount;
    Result.AllocBytes += Size;
    tagAllocSite(Fr, I,
                 I.BuiltinCallee == Builtin::Malloc ? "malloc" : "GC_malloc");
    void *P = AllocOrFail(Size, false, "GC_malloc");
    if (!P)
      return;
    SetDst(reinterpret_cast<uint64_t>(P));
    return;
  }
  case Builtin::GcMallocAtomic: {
    Result.Cycles += Opts.Model.CyclesAllocator;
    Result.AllocatorCycles += Opts.Model.CyclesAllocator;
    uint64_t Size = Arg(0);
    ++Result.AllocCount;
    Result.AllocBytes += Size;
    tagAllocSite(Fr, I, "GC_malloc_atomic");
    void *P = AllocOrFail(Size, true, "GC_malloc_atomic");
    if (!P)
      return;
    SetDst(reinterpret_cast<uint64_t>(P));
    return;
  }
  case Builtin::Calloc: {
    Result.Cycles += Opts.Model.CyclesAllocator;
    Result.AllocatorCycles += Opts.Model.CyclesAllocator;
    uint64_t N = Arg(0), Each = Arg(1);
    if (Each && N > UINT64_MAX / Each) {
      fail("out of memory: calloc(" + std::to_string(N) + ", " +
           std::to_string(Each) + ") overflows");
      return;
    }
    uint64_t Size = N * Each;
    ++Result.AllocCount;
    Result.AllocBytes += Size;
    tagAllocSite(Fr, I, "calloc");
    void *P = AllocOrFail(Size, false, "calloc");
    if (!P)
      return;
    SetDst(reinterpret_cast<uint64_t>(P));
    return;
  }
  case Builtin::Realloc: {
    Result.Cycles += Opts.Model.CyclesAllocator;
    Result.AllocatorCycles += Opts.Model.CyclesAllocator;
    uint64_t Old = Arg(0);
    uint64_t Size = Arg(1);
    ++Result.AllocCount;
    Result.AllocBytes += Size;
    tagAllocSite(Fr, I, "realloc");
    void *New = AllocOrFail(Size, false, "realloc");
    if (!New)
      return;
    if (Old) {
      size_t OldSize = C->objectSize(reinterpret_cast<void *>(Old));
      size_t CopyLen = OldSize < Size ? OldSize : Size;
      std::memcpy(New, reinterpret_cast<void *>(Old), CopyLen);
    }
    SetDst(reinterpret_cast<uint64_t>(New));
    return;
  }
  case Builtin::Free:
    // "remove all calls to free" — the collector reclaims.
    return;
  case Builtin::GcCollect:
    C->collect();
    return;
  case Builtin::PrintInt: {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%" PRId64,
                  static_cast<int64_t>(Arg(0)));
    Result.Output += Buf;
    return;
  }
  case Builtin::PrintChar:
    Result.Output.push_back(static_cast<char>(Arg(0)));
    return;
  case Builtin::PrintStr: {
    const char *S = reinterpret_cast<const char *>(Arg(0));
    if (!S) {
      fail("print_str(NULL)");
      return;
    }
    size_t Len = strnlen(S, 1 << 20);
    Result.Output.append(S, Len);
    return;
  }
  case Builtin::PrintDouble: {
    char Buf[48];
    std::snprintf(Buf, sizeof(Buf), "%g", bitsToDouble(Arg(0)));
    Result.Output += Buf;
    return;
  }
  case Builtin::AssertTrue:
    if (Arg(0) == 0)
      fail("assert_true failed in VM program");
    return;
  case Builtin::RandSeed:
    Prng = Arg(0) ? Arg(0) : 0x9E3779B97F4A7C15ull;
    return;
  case Builtin::RandNext: {
    // xorshift64*
    Prng ^= Prng >> 12;
    Prng ^= Prng << 25;
    Prng ^= Prng >> 27;
    uint64_t V = Prng * 0x2545F4914F6CDD1Dull;
    SetDst(V >> 1); // keep it a nonnegative long
    return;
  }
  case Builtin::SameObj: {
    Result.Cycles += Opts.Model.CyclesCheck;
    Result.CheckCycles += Opts.Model.CyclesCheck;
    size_t Before = Check->violationCount();
    Check->sameObj(reinterpret_cast<const void *>(Arg(0)),
                   reinterpret_cast<const void *>(Arg(1)),
                   Fr.F->Name.c_str());
    SetDst(Arg(0));
    if (Opts.HaltOnCheckViolation && Check->violationCount() != Before)
      fail("pointer-arithmetic check violation");
    return;
  }
  case Builtin::PreIncr:
  case Builtin::PostIncr: {
    Result.Cycles += Opts.Model.CyclesCheck;
    Result.CheckCycles += Opts.Model.CyclesCheck;
    uint64_t Slot = Arg(0);
    if (!checkMemoryAccess(Slot, "GC_*_incr"))
      return;
    size_t Before = Check->violationCount();
    auto *PP = reinterpret_cast<void **>(Slot);
    void *Out = I.BuiltinCallee == Builtin::PreIncr
                    ? Check->preIncr(PP, static_cast<ptrdiff_t>(Arg(1)),
                                     Fr.F->Name.c_str())
                    : Check->postIncr(PP, static_cast<ptrdiff_t>(Arg(1)),
                                      Fr.F->Name.c_str());
    SetDst(reinterpret_cast<uint64_t>(Out));
    if (Opts.HaltOnCheckViolation && Check->violationCount() != Before)
      fail("pointer-arithmetic check violation");
    return;
  }
  case Builtin::None:
    fail("call to unresolved builtin");
    return;
  }
}

RunResult VM::run() {
  Result = RunResult();
  Result.Ok = true;

  if (M.MainIndex < 0) {
    fail("module has no main()");
    return Result;
  }

  if (M.GlobalInitIndex >= 0)
    pushFrame(M.Functions[M.GlobalInitIndex], {}, NoReg);

  bool InGlobalInit = M.GlobalInitIndex >= 0;
  bool MainStarted = !InGlobalInit;
  if (!InGlobalInit)
    pushFrame(M.Functions[M.MainIndex], {}, NoReg);

  const uint64_t SampleEvery =
      Opts.Profile ? Opts.Profile->SamplePeriodCycles : 0;
  LastSampleCycles = 0;

  const bool Watchdogs = Opts.VmDeadlineNs || Opts.GcDeadlineNs;
  const uint64_t RunStartNs = Watchdogs ? support::monotonicNowNs() : 0;

  while (!Halted && !Frames.empty()) {
    Frame &Fr = Frames.back();
    const BasicBlock &Blk = Fr.F->Blocks[Fr.Block];
    if (Fr.IP >= Blk.Insts.size()) {
      fail("control fell off the end of block '" + Blk.Name + "' in " +
           Fr.F->Name);
      break;
    }
    const Instruction &I = Blk.Insts[Fr.IP];
    const Function *ExecF = Fr.F;
    ++Fr.IP;

    ++Result.InstructionsExecuted;
    unsigned InstCycles = instructionCycles(I);
    Result.Cycles += InstCycles;
    switch (I.Op) {
    case Opcode::KeepLive:
      ++Result.KeepLiveExecuted;
      Result.KeepLiveCycles += InstCycles;
      break;
    case Opcode::Kill:
      ++Result.KillsExecuted;
      break;
    case Opcode::CheckSameObj:
      Result.CheckCycles += InstCycles;
      break;
    default:
      break;
    }
    if (Result.InstructionsExecuted > Opts.MaxInstructions) {
      fail("instruction budget exceeded");
      break;
    }
    if (Result.Output.size() > Opts.MaxOutputBytes) {
      fail("output limit exceeded");
      break;
    }
    // Deadline watchdogs: wall clock is polled every ~512 instructions to
    // keep the hot loop free of syscalls; the GC deadline is detected by
    // the collector itself and only acted on here.
    if (Watchdogs && (Result.InstructionsExecuted & 511) == 0) {
      if (Opts.VmDeadlineNs &&
          support::monotonicNowNs() - RunStartNs > Opts.VmDeadlineNs) {
        Result.WatchdogTimeout = true;
        if (Opts.Trace)
          Opts.Trace->emit("robust", "vm.deadline",
                           support::monotonicNowNs() - RunStartNs,
                           Opts.VmDeadlineNs);
        fail("watchdog: VM run deadline exceeded");
        break;
      }
      if (Opts.GcDeadlineNs && C->stats().GcDeadlineExceeded > 0) {
        Result.WatchdogTimeout = true;
        fail("watchdog: GC collection deadline exceeded");
        break;
      }
    }

    auto A = [&] { return evalValue(Fr, I.A); };
    auto B = [&] { return evalValue(Fr, I.B); };
    auto SetDst = [&](uint64_t V) {
      if (I.Dst != NoReg)
        Fr.Regs[I.Dst] = V;
    };

    switch (I.Op) {
    case Opcode::Nop:
      break;
    case Opcode::Mov:
      SetDst(A());
      break;
    case Opcode::Add: SetDst(A() + B()); break;
    case Opcode::Sub: SetDst(A() - B()); break;
    case Opcode::Mul: SetDst(A() * B()); break;
    case Opcode::DivS: {
      int64_t Den = static_cast<int64_t>(B());
      if (Den == 0) {
        fail("division by zero");
        break;
      }
      SetDst(static_cast<uint64_t>(static_cast<int64_t>(A()) / Den));
      break;
    }
    case Opcode::DivU: {
      uint64_t Den = B();
      if (Den == 0) {
        fail("division by zero");
        break;
      }
      SetDst(A() / Den);
      break;
    }
    case Opcode::RemS: {
      int64_t Den = static_cast<int64_t>(B());
      if (Den == 0) {
        fail("remainder by zero");
        break;
      }
      SetDst(static_cast<uint64_t>(static_cast<int64_t>(A()) % Den));
      break;
    }
    case Opcode::RemU: {
      uint64_t Den = B();
      if (Den == 0) {
        fail("remainder by zero");
        break;
      }
      SetDst(A() % Den);
      break;
    }
    case Opcode::And: SetDst(A() & B()); break;
    case Opcode::Or: SetDst(A() | B()); break;
    case Opcode::Xor: SetDst(A() ^ B()); break;
    case Opcode::Shl: SetDst(A() << (B() & 63)); break;
    case Opcode::ShrA:
      SetDst(static_cast<uint64_t>(static_cast<int64_t>(A()) >> (B() & 63)));
      break;
    case Opcode::ShrL: SetDst(A() >> (B() & 63)); break;
    case Opcode::Neg:
      SetDst(static_cast<uint64_t>(-static_cast<int64_t>(A())));
      break;
    case Opcode::Not: SetDst(~A()); break;
    case Opcode::FAdd:
      SetDst(doubleToBits(bitsToDouble(A()) + bitsToDouble(B())));
      break;
    case Opcode::FSub:
      SetDst(doubleToBits(bitsToDouble(A()) - bitsToDouble(B())));
      break;
    case Opcode::FMul:
      SetDst(doubleToBits(bitsToDouble(A()) * bitsToDouble(B())));
      break;
    case Opcode::FDiv:
      SetDst(doubleToBits(bitsToDouble(A()) / bitsToDouble(B())));
      break;
    case Opcode::FNeg: SetDst(doubleToBits(-bitsToDouble(A()))); break;
    case Opcode::CmpEq: SetDst(A() == B()); break;
    case Opcode::CmpNe: SetDst(A() != B()); break;
    case Opcode::CmpLtS:
      SetDst(static_cast<int64_t>(A()) < static_cast<int64_t>(B()));
      break;
    case Opcode::CmpLeS:
      SetDst(static_cast<int64_t>(A()) <= static_cast<int64_t>(B()));
      break;
    case Opcode::CmpGtS:
      SetDst(static_cast<int64_t>(A()) > static_cast<int64_t>(B()));
      break;
    case Opcode::CmpGeS:
      SetDst(static_cast<int64_t>(A()) >= static_cast<int64_t>(B()));
      break;
    case Opcode::CmpLtU: SetDst(A() < B()); break;
    case Opcode::CmpLeU: SetDst(A() <= B()); break;
    case Opcode::CmpGtU: SetDst(A() > B()); break;
    case Opcode::CmpGeU: SetDst(A() >= B()); break;
    case Opcode::FCmpEq:
      SetDst(bitsToDouble(A()) == bitsToDouble(B()));
      break;
    case Opcode::FCmpNe:
      SetDst(bitsToDouble(A()) != bitsToDouble(B()));
      break;
    case Opcode::FCmpLt:
      SetDst(bitsToDouble(A()) < bitsToDouble(B()));
      break;
    case Opcode::FCmpLe:
      SetDst(bitsToDouble(A()) <= bitsToDouble(B()));
      break;
    case Opcode::FCmpGt:
      SetDst(bitsToDouble(A()) > bitsToDouble(B()));
      break;
    case Opcode::FCmpGe:
      SetDst(bitsToDouble(A()) >= bitsToDouble(B()));
      break;
    case Opcode::SExt: {
      unsigned Bits = I.Size * 8;
      uint64_t V = A();
      if (Bits < 64) {
        uint64_t Mask = (uint64_t(1) << Bits) - 1;
        V &= Mask;
        if (V >> (Bits - 1))
          V |= ~Mask;
      }
      SetDst(V);
      break;
    }
    case Opcode::ZExt: {
      unsigned Bits = I.Size * 8;
      uint64_t V = A();
      if (Bits < 64)
        V &= (uint64_t(1) << Bits) - 1;
      SetDst(V);
      break;
    }
    case Opcode::SIToFP:
      SetDst(doubleToBits(static_cast<double>(static_cast<int64_t>(A()))));
      break;
    case Opcode::FPToSI:
      SetDst(static_cast<uint64_t>(
          static_cast<int64_t>(bitsToDouble(A()))));
      break;
    case Opcode::Load:
    case Opcode::LoadIdx: {
      uint64_t Addr = A() + (I.Op == Opcode::LoadIdx ? B() : 0);
      if (!checkMemoryAccess(Addr, "load"))
        break;
      uint64_t Raw = 0;
      std::memcpy(&Raw, reinterpret_cast<const void *>(Addr), I.Size);
      if (I.Size < 8) {
        unsigned Bits = I.Size * 8;
        uint64_t Mask = (uint64_t(1) << Bits) - 1;
        Raw &= Mask;
        if (I.SignedLoad && (Raw >> (Bits - 1)))
          Raw |= ~Mask;
      }
      SetDst(Raw);
      break;
    }
    case Opcode::Store:
    case Opcode::StoreIdx: {
      uint64_t Addr, Val;
      if (I.Op == Opcode::StoreIdx) {
        Addr = A() + B();
        Val = evalValue(Fr, I.C);
      } else {
        Addr = A();
        Val = B();
      }
      if (!checkMemoryAccess(Addr, "store"))
        break;
      std::memcpy(reinterpret_cast<void *>(Addr), &Val, I.Size);
      break;
    }
    case Opcode::AddrLocal:
      SetDst(reinterpret_cast<uint64_t>(Stack.data()) + Fr.FrameBase +
             static_cast<uint64_t>(I.Aux));
      break;
    case Opcode::AddrGlobal:
      SetDst(reinterpret_cast<uint64_t>(Globals.data()) +
             static_cast<uint64_t>(I.Aux));
      break;
    case Opcode::Jmp:
      enterBlock(Fr, I.Blk1);
      break;
    case Opcode::Br:
      enterBlock(Fr, A() ? I.Blk1 : I.Blk2);
      break;
    case Opcode::Ret: {
      uint64_t RetVal = evalValue(Fr, I.A);
      uint32_t RetDst = Fr.RetDst;
      StackTop = Fr.FrameBase;
      Frames.pop_back();
      if (Frames.empty()) {
        if (InGlobalInit && !MainStarted) {
          InGlobalInit = false;
          MainStarted = true;
          StackTop = 0;
          pushFrame(M.Functions[M.MainIndex], {}, NoReg);
        } else {
          Result.ExitCode = static_cast<long>(RetVal);
        }
      } else if (RetDst != NoReg) {
        Frames.back().Regs[RetDst] = RetVal;
      }
      break;
    }
    case Opcode::Call: {
      if (Opts.GcCallPeriod && ++CallsExecuted % Opts.GcCallPeriod == 0)
        C->collect(); // call-site-only collection (optimization 4 regime)
      if (I.BuiltinCallee != Builtin::None) {
        runBuiltin(Fr, I);
        break;
      }
      int32_t Callee = I.Callee;
      if (Callee < 0) {
        int64_t FP = static_cast<int64_t>(A());
        Callee = static_cast<int32_t>(FP - FuncPtrBase);
        if (Callee < 0 ||
            static_cast<size_t>(Callee) >= M.Functions.size()) {
          fail("indirect call through a non-function value");
          break;
        }
      }
      std::vector<uint64_t> Args;
      Args.reserve(I.Args.size());
      for (const Value &V : I.Args)
        Args.push_back(evalValue(Fr, V));
      pushFrame(M.Functions[Callee], Args, I.Dst);
      break;
    }
    case Opcode::KeepLive:
      SetDst(A());
      break;
    case Opcode::CheckSameObj: {
      size_t Before = Check->violationCount();
      Check->sameObj(reinterpret_cast<const void *>(A()),
                     reinterpret_cast<const void *>(B()), Fr.F->Name.c_str());
      SetDst(A());
      if (Opts.HaltOnCheckViolation && Check->violationCount() != Before)
        fail("pointer-arithmetic check violation");
      break;
    }
    case Opcode::Kill:
      if (I.A.isReg())
        Fr.Regs[I.A.Reg] = 0;
      break;
    }

    // Cycle sampling: the period elapsed sometime during this instruction
    // (it may charge several cycle sources at once — spill penalties,
    // builtin costs); attribute the whole gap to it. Fr may dangle after a
    // Call/Ret, so the captured ExecF carries the leaf.
    if (SampleEvery && Result.Cycles - LastSampleCycles >= SampleEvery)
      recordCycleSample(ExecF, I);

    if (Opts.GcInstructionPeriod &&
        Result.InstructionsExecuted % Opts.GcInstructionPeriod == 0)
      C->collect();
  }

  Result.Collections = C->stats().Collections;
  Result.ChecksPerformed = Check->checkCount();
  Result.CheckViolations = Check->violationCount();
  Result.Gc = C->stats();
  if (Opts.Trace)
    Opts.Trace->emit("vm", "run.end", Result.Cycles,
                     Result.InstructionsExecuted);
  return Result;
}
