//===- driver/Isolate.cpp -------------------------------------*- C++ -*-===//

#include "driver/Isolate.h"

#include "support/ExitCodes.h"
#include "support/Stats.h"

#include <cerrno>
#include <csignal>
#include <cstring>

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace gcsafe;
using namespace gcsafe::driver;

driver::OptRung gcsafe::driver::lowerRung(OptRung R) {
  switch (R) {
  case OptRung::Full:
  case OptRung::Quarantined:
    return OptRung::PeepholeOnly;
  case OptRung::PeepholeOnly:
  case OptRung::Unoptimized:
    return OptRung::Unoptimized;
  }
  return OptRung::Unoptimized;
}

const char *gcsafe::driver::outcomeForExit(int ExitCode) {
  switch (ExitCode) {
  case support::ExitSuccess: return "ok";
  case support::ExitDegradedSuccess: return "degraded";
  case support::ExitUsage: return "usage";
  case support::ExitSafetyViolation:
  case support::ExitMutantEscape: return "safety";
  case support::ExitWatchdogTimeout: return "timeout";
  case support::ExitOverloaded: return "overloaded";
  case support::ExitWorkerCrash: return "crashed";
  default: return "error";
  }
}

WaitClassification gcsafe::driver::classifyWaitStatus(int Status,
                                                      bool TimedOut) {
  WaitClassification C;
  if (TimedOut) {
    C.Outcome = "timeout";
    C.Signal = SIGKILL;
    C.DefaultDetail = "killed by the driver: attempt timeout";
    return C;
  }
  if (WIFSIGNALED(Status)) {
    C.Outcome = "signal";
    C.Signal = WTERMSIG(Status);
    C.DefaultDetail =
        std::string("killed by signal ") + std::to_string(WTERMSIG(Status));
    return C;
  }
  C.ExitCode = WIFEXITED(Status) ? WEXITSTATUS(Status) : -1;
  C.Outcome = outcomeForExit(C.ExitCode);
  return C;
}

SandboxOutcome
gcsafe::driver::runInSandbox(const std::function<int(int PayloadFd)> &Child,
                             uint64_t TimeoutMs) {
  SandboxOutcome Out;
  int Pipe[2];
  if (pipe(Pipe) != 0)
    return Out;

  uint64_t StartNs = support::monotonicNowNs();
  pid_t Pid = fork();
  if (Pid < 0) {
    close(Pipe[0]);
    close(Pipe[1]);
    return Out;
  }
  if (Pid == 0) {
    close(Pipe[0]);
    int Code = Child(Pipe[1]);
    close(Pipe[1]);
    _exit(Code);
  }

  close(Pipe[1]);
  int Flags = fcntl(Pipe[0], F_GETFL, 0);
  fcntl(Pipe[0], F_SETFL, Flags | O_NONBLOCK);

  uint64_t DeadlineNs = TimeoutMs ? StartNs + TimeoutMs * 1000000ull : 0;
  bool TimedOut = false;
  int Status = 0;
  char Buf[4096];
  for (;;) {
    // Drain the pipe while the child runs so a payload larger than the
    // pipe buffer cannot wedge the child in write().
    for (;;) {
      ssize_t N = read(Pipe[0], Buf, sizeof(Buf));
      if (N <= 0)
        break;
      Out.Payload.append(Buf, static_cast<size_t>(N));
    }
    pid_t P = waitpid(Pid, &Status, WNOHANG);
    if (P == Pid)
      break;
    if (P < 0 && errno != EINTR) { // unreachable short of a kernel bug
      kill(Pid, SIGKILL);
      waitpid(Pid, &Status, 0);
      break;
    }
    if (DeadlineNs && !TimedOut && support::monotonicNowNs() > DeadlineNs) {
      TimedOut = true;
      kill(Pid, SIGKILL);
    }
    usleep(2000);
  }
  // The child is gone; collect whatever is still buffered.
  for (;;) {
    ssize_t N = read(Pipe[0], Buf, sizeof(Buf));
    if (N <= 0)
      break;
    Out.Payload.append(Buf, static_cast<size_t>(N));
  }
  close(Pipe[0]);

  Out.DurationMs = (support::monotonicNowNs() - StartNs) / 1000000ull;
  if (TimedOut) {
    Out.St = SandboxOutcome::Status::TimedOut;
    Out.Signal = SIGKILL;
  } else if (WIFSIGNALED(Status)) {
    Out.St = SandboxOutcome::Status::Signaled;
    Out.Signal = WTERMSIG(Status);
  } else {
    Out.St = SandboxOutcome::Status::Exited;
    Out.ExitCode = WIFEXITED(Status) ? WEXITSTATUS(Status) : -1;
  }
  return Out;
}
