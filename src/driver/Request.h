//===- driver/Request.h - One compile request, end to end ------*- C++ -*-===//
//
// Part of the gcsafe project, a reproduction of Boehm, "Simple
// Garbage-Collector-Safety" (PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The re-entrant request surface of the driver (docs/SERVING.md). A
/// RequestContext owns every piece of state one compilation touches — the
/// Compilation, the fault injector, the trace ring, the self-heal ladder
/// and its quarantine set — so any number of requests can run concurrently
/// in one process without sharing anything but an (optional, thread-safe)
/// VerifyMemo. gcsafe-serve runs one context per request on its worker
/// pool; gcsafe-batch --service does the same in-process.
///
/// The exit-code mapping is the gcsafe-cc contract (support/ExitCodes.h):
/// parse/compile/run errors are 1, safety violations 3, degraded success
/// 5, watchdog timeouts 6, and otherwise the guest program's own status.
///
//===----------------------------------------------------------------------===//

#ifndef GCSAFE_DRIVER_REQUEST_H
#define GCSAFE_DRIVER_REQUEST_H

#include "driver/Pipeline.h"
#include "driver/SelfHeal.h"
#include "support/FaultInject.h"
#include "support/Stats.h"
#include "support/Trace.h"

#include <memory>
#include <string>
#include <vector>

namespace gcsafe {
namespace driver {

/// Everything that parameterizes one compile request. The flag surface is
/// gcsafe-cc's, minus the output-routing options (a request's reports are
/// returned, not written to files).
struct RequestOptions {
  std::string Name = "<request>";
  /// Service-level trace identity (the serve protocol's request_id):
  /// client-supplied or generated at admission, echoed back on the
  /// response and stamped on every telemetry event the request produces.
  /// Deliberately NOT part of the cache key (serve::canonicalFlagString)
  /// — two requests differing only in id must share a cache entry.
  std::string RequestId;
  std::string Source;
  CompileMode Mode = CompileMode::O2Safe;
  annotate::AnnotatorOptions Annot;
  SafetyVerify Verify = SafetyVerify::None;
  bool VerifyIREachPass = false;
  /// Compile down the degradation ladder (docs/ROBUSTNESS.md §5,§7).
  bool SelfHeal = false;
  OptRung StartRung = OptRung::Full;
  uint64_t PassDeadlineNs = 0;
  /// "SEED:SPEC" failpoint spec (support/FaultInject.h), or empty. Parsed
  /// into a per-request injector — faults never leak across requests.
  std::string FailInjectSpec;
  int CorruptKind = -1;
  /// Execute the compiled module on the simulated machine.
  bool Run = false;
  std::string MachineName = "sparc10";
  uint64_t GcInstructionPeriod = 0;
  uint64_t GcAllocTrigger = 0;
  uint64_t GcCallPeriod = 0;
  uint64_t GcDeadlineNs = 0;
  uint64_t VmDeadlineNs = 0;
  /// Whole-request wall-clock budget (the serve protocol's deadline_ms).
  /// The service clamps the remaining budget into the pass/GC/VM watchdogs
  /// above and refuses to start (or to cache) a request past its deadline;
  /// 0 = no deadline. Relative to submission, not to execution start.
  uint64_t DeadlineNs = 0;
  size_t TraceCapacity = 4096;
  /// Shared cross-request verification memo (may be null).
  VerifyMemo *Memo = nullptr;
};

/// The result of one request: the stable exit code, the degradation
/// outcome, and the reports a client would otherwise get from gcsafe-cc's
/// --stats-json / --lint-json.
struct RequestOutcome {
  int ExitCode = 0;
  bool Ok = false;
  /// Self-heal only: result obtained through rollback/quarantine/descent.
  bool Degraded = false;
  /// Ladder rung the result committed at ("full" when SelfHeal is off).
  std::string Rung = "full";
  std::vector<std::string> Quarantined;
  std::string Error;
  /// gcsafe-run-report-v1 (always present on a compile that got that far).
  support::Json Report;
  bool HasReport = false;
  /// gcsafe-lint-v1 (present when Verify was requested).
  support::Json Lint;
  bool HasLint = false;
};

/// One request's private state. Not copyable; not shared across threads.
class RequestContext {
public:
  explicit RequestContext(RequestOptions Opts);
  RequestContext(const RequestContext &) = delete;
  RequestContext &operator=(const RequestContext &) = delete;
  ~RequestContext();

  /// Frontend only; false on parse errors (Error holds the diagnostics).
  /// Idempotent — execute() reuses the parse.
  bool parse(std::string &Error);

  /// The annotated source for modes that preprocess (safe/safepost/
  /// checked), the raw source otherwise — the content half of the
  /// service's cache key (docs/SERVING.md). Requires a successful parse().
  std::string preprocessedSource();

  /// Middle end (+ VM when Opts.Run) with the gcsafe-cc exit-code
  /// contract. Safe to call without parse(); parse errors become an
  /// ExitError outcome.
  RequestOutcome execute();

  const RequestOptions &options() const { return Opts; }
  support::TraceBuffer &trace() { return Trace; }
  const SelfHealReport &healReport() const { return Heal; }

private:
  RequestOptions Opts;
  Compilation Comp;
  support::FaultInjector Faults;
  bool UseFaults = false;
  std::string FaultParseError;
  support::TraceBuffer Trace;
  SelfHealReport Heal;
};

/// The build's cache-key fingerprint: the key-format version plus a hash
/// of the optimizer pass roster (opt::passRosterString), e.g.
/// "gcsafe-key-v1;roster=<32hex>". Seeded into every ContentHasher that
/// computes a cache key (serve::CompileService) and stamped into every
/// serve::Store record, so a binary whose compiled output could differ
/// from ours keys into a disjoint namespace and can never replay — or be
/// replayed from — a stale payload. Stable within one build, across
/// processes and machines.
const std::string &keyFingerprint();

/// Maps a --mode= value to a CompileMode ("o2", "safe", "safepost",
/// "debug", "checked"). False on unknown names.
bool parseCompileModeName(const std::string &Text, CompileMode &Out);
/// The inverse: the protocol/CLI token for \p Mode (not the display name
/// compileModeName returns).
const char *compileModeToken(CompileMode Mode);
/// True when \p Name is a known cost model (sparc2, sparc10, pentium90).
bool knownMachineName(const std::string &Name);

} // namespace driver
} // namespace gcsafe

#endif // GCSAFE_DRIVER_REQUEST_H
