//===- driver/Request.cpp -------------------------------------*- C++ -*-===//

#include "driver/Request.h"

#include "ir/Verify.h"
#include "opt/Passes.h"
#include "support/ExitCodes.h"
#include "support/Hash.h"
#include "vm/VM.h"

using namespace gcsafe;
using namespace gcsafe::driver;

const std::string &gcsafe::driver::keyFingerprint() {
  // "gcsafe-key-v1" names the key format itself (what canonicalFlagString
  // covers, how source is preprocessed); the roster hash names the
  // optimizer's behavior. Bump the version on any key-format change.
  static const std::string FP =
      "gcsafe-key-v1;roster=" + support::contentHash(opt::passRosterString());
  return FP;
}

bool gcsafe::driver::parseCompileModeName(const std::string &Text,
                                          CompileMode &Out) {
  if (Text == "o2")
    Out = CompileMode::O2;
  else if (Text == "safe")
    Out = CompileMode::O2Safe;
  else if (Text == "safepost")
    Out = CompileMode::O2SafePost;
  else if (Text == "debug")
    Out = CompileMode::Debug;
  else if (Text == "checked")
    Out = CompileMode::DebugChecked;
  else
    return false;
  return true;
}

const char *gcsafe::driver::compileModeToken(CompileMode Mode) {
  switch (Mode) {
  case CompileMode::O2: return "o2";
  case CompileMode::O2Safe: return "safe";
  case CompileMode::O2SafePost: return "safepost";
  case CompileMode::Debug: return "debug";
  case CompileMode::DebugChecked: return "checked";
  }
  return "?";
}

bool gcsafe::driver::knownMachineName(const std::string &Name) {
  return Name == "sparc2" || Name == "sparc10" || Name == "pentium90";
}

RequestContext::RequestContext(RequestOptions O)
    : Opts(std::move(O)), Comp(Opts.Name, Opts.Source),
      Trace(Opts.TraceCapacity ? Opts.TraceCapacity : 4096) {
  if (!Opts.FailInjectSpec.empty()) {
    if (support::FaultInjector::parse(Opts.FailInjectSpec, Faults,
                                      FaultParseError))
      UseFaults = true;
    else if (FaultParseError.empty())
      FaultParseError = "unparseable spec";
  }
}

RequestContext::~RequestContext() = default;

bool RequestContext::parse(std::string &Error) {
  if (Comp.parse())
    return true;
  Error = Comp.renderedDiagnostics();
  return false;
}

std::string RequestContext::preprocessedSource() {
  switch (Opts.Mode) {
  case CompileMode::O2Safe:
  case CompileMode::O2SafePost:
    return Comp.annotatedSource(annotate::AnnotationMode::GCSafe, Opts.Annot);
  case CompileMode::DebugChecked:
    return Comp.annotatedSource(annotate::AnnotationMode::Checked,
                                Opts.Annot);
  case CompileMode::O2:
  case CompileMode::Debug:
    return Opts.Source;
  }
  return Opts.Source;
}

RequestOutcome RequestContext::execute() {
  RequestOutcome Out;

  if (!FaultParseError.empty()) {
    Out.ExitCode = support::ExitUsage;
    Out.Error = "bad fail-inject spec: " + FaultParseError;
    return Out;
  }
  vm::VMOptions VO;
  if (Opts.MachineName == "sparc2")
    VO.Model = vm::sparc2();
  else if (Opts.MachineName == "sparc10" || Opts.MachineName.empty())
    VO.Model = vm::sparc10();
  else if (Opts.MachineName == "pentium90")
    VO.Model = vm::pentium90();
  else {
    Out.ExitCode = support::ExitUsage;
    Out.Error = "unknown machine '" + Opts.MachineName + "'";
    return Out;
  }

  std::string ParseError;
  if (!parse(ParseError)) {
    Out.ExitCode = support::ExitError;
    Out.Error = ParseError;
    return Out;
  }

  CompileOptions CO;
  CO.Mode = Opts.Mode;
  CO.Annot = Opts.Annot;
  CO.Trace = &Trace;
  CO.Verify = Opts.Verify;
  CO.VerifyIREachPass = Opts.VerifyIREachPass;
  CO.Memo = Opts.Memo;

  CompileResult CR;
  if (Opts.SelfHeal) {
    SelfHealOptions SH;
    SH.StartRung = Opts.StartRung;
    SH.PassDeadlineNs = Opts.PassDeadlineNs;
    SH.Faults = UseFaults ? &Faults : nullptr;
    SH.CorruptKind = Opts.CorruptKind;
    CR = compileSelfHealing(Comp, CO, SH, Heal);
    Out.Degraded = Heal.Degraded;
    Out.Rung = optRungName(Heal.Rung);
    Out.Quarantined = Heal.Quarantined;
    if (CR.Ok && !Heal.Ok) {
      // Every rung failed final verification — unsafe code with nowhere
      // left to descend (the gcsafe-cc exit-3 path).
      Out.ExitCode = support::ExitSafetyViolation;
      for (const analysis::SafetyDiag &D : CR.SafetyDiags)
        Out.Error += analysis::formatSafetyDiag(D) + "\n";
      return Out;
    }
  } else {
    CR = Comp.compile(CO);
  }
  if (!CR.Ok) {
    Out.ExitCode = support::ExitError;
    Out.Error = CR.Errors;
    return Out;
  }
  std::vector<std::string> VerifyErrors;
  if (!ir::verifyModule(CR.Module, VerifyErrors)) {
    Out.ExitCode = support::ExitError;
    for (const std::string &E : VerifyErrors)
      Out.Error += "IR verifier: " + E + "\n";
    return Out;
  }
  if (!CR.IRVerifyErrors.empty()) {
    Out.ExitCode = support::ExitError;
    for (const std::string &E : CR.IRVerifyErrors)
      Out.Error += "IR verifier: " + E + "\n";
    return Out;
  }
  if (Opts.Verify != SafetyVerify::None) {
    Out.Lint = buildLintReport(Opts.Name, Opts.Mode,
                               Opts.Verify == SafetyVerify::EachPass, CR,
                               &Comp.buffer());
    Out.HasLint = true;
    if (!CR.SafetyOk) {
      Out.ExitCode = support::ExitSafetyViolation;
      for (const analysis::SafetyDiag &D : CR.SafetyDiags)
        Out.Error += analysis::formatSafetyDiag(D) + "\n";
      Out.Report =
          buildRunReport(Opts.Name, Opts.Mode, Opts.MachineName, CR, nullptr);
      Out.HasReport = true;
      return Out;
    }
  }

  if (!Opts.Run) {
    Out.Report =
        buildRunReport(Opts.Name, Opts.Mode, Opts.MachineName, CR, nullptr);
    Out.HasReport = true;
    Out.Ok = true;
    Out.ExitCode = Out.Degraded ? support::ExitDegradedSuccess
                                : support::ExitSuccess;
    return Out;
  }

  VO.GcInstructionPeriod = Opts.GcInstructionPeriod;
  VO.GcAllocTrigger = Opts.GcAllocTrigger;
  VO.GcCallPeriod = Opts.GcCallPeriod;
  VO.GcDeadlineNs = Opts.GcDeadlineNs;
  VO.VmDeadlineNs = Opts.VmDeadlineNs;
  VO.Trace = &Trace;
  if (UseFaults)
    VO.Faults = &Faults;
  vm::VM Machine(CR.Module, VO);
  vm::RunResult R = Machine.run();
  Out.Report = buildRunReport(Opts.Name, Opts.Mode, Opts.MachineName, CR, &R);
  Out.HasReport = true;
  if (R.WatchdogTimeout) {
    Out.ExitCode = support::ExitWatchdogTimeout;
    Out.Error = R.Error;
    return Out;
  }
  if (!R.Ok) {
    Out.ExitCode = support::ExitError;
    Out.Error = "runtime error: " + R.Error;
    return Out;
  }
  Out.Ok = true;
  // A degraded-but-correct run reports ExitDegradedSuccess in place of 0;
  // a nonzero program exit always wins.
  Out.ExitCode = (R.ExitCode == 0 && Out.Degraded)
                     ? support::ExitDegradedSuccess
                     : static_cast<int>(R.ExitCode & 0xFF);
  return Out;
}
