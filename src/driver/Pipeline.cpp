//===- driver/Pipeline.cpp ------------------------------------*- C++ -*-===//

#include "driver/Pipeline.h"

#include "annotate/SourceCheck.h"
#include "cfront/Lexer.h"
#include "ir/Verify.h"

#include <cassert>

using namespace gcsafe;
using namespace gcsafe::driver;

const char *gcsafe::driver::compileModeName(CompileMode Mode) {
  switch (Mode) {
  case CompileMode::O2: return "-O2";
  case CompileMode::O2Safe: return "-O2 safe";
  case CompileMode::O2SafePost: return "-O2 safe+postproc";
  case CompileMode::Debug: return "-g";
  case CompileMode::DebugChecked: return "-g checked";
  }
  return "?";
}

Compilation::Compilation(std::string Name, std::string Source)
    : Buffer(std::move(Name), std::move(Source)) {
  Actions = std::make_unique<cfront::Sema>(Types, Diags, NodeArena);
}

Compilation::~Compilation() = default;

bool Compilation::parse() {
  if (Parsed)
    return ParseOk;
  Parsed = true;
  Actions->declareRuntimeBuiltins(TU);
  cfront::Lexer Lex(Buffer, Diags);
  cfront::Parser P(Lex.lexAll(), *Actions);
  P.parseTranslationUnit(TU);
  ParseOk = !Diags.hasErrors();
  if (ParseOk)
    annotate::runSourceChecks(TU, Diags); // hidden-pointer hazard warnings
  return ParseOk;
}

annotate::AnnotationMap
Compilation::annotate(const annotate::AnnotatorOptions &Options) {
  parse();
  return annotate::annotateTranslationUnit(TU, Options);
}

std::string
Compilation::annotatedSource(annotate::AnnotationMode Mode,
                             const annotate::AnnotatorOptions &Options) {
  annotate::AnnotationMap Map = annotate(Options);
  return annotate::renderAnnotatedSource(Buffer, Map, Mode);
}

CompileResult Compilation::compile(const CompileOptions &Options) {
  CompileResult Result;
  if (!parse()) {
    Result.Errors = renderedDiagnostics();
    return Result;
  }

  annotate::AnnotationMap Map;
  bool NeedsAnnotations = Options.Mode == CompileMode::O2Safe ||
                          Options.Mode == CompileMode::O2SafePost ||
                          Options.Mode == CompileMode::DebugChecked;
  if (NeedsAnnotations) {
    Map = annotate::annotateTranslationUnit(TU, Options.Annot);
    Result.AnnotStats = Map.stats();
  }

  ir::LowerOptions LO;
  switch (Options.Mode) {
  case CompileMode::O2:
    break;
  case CompileMode::O2Safe:
  case CompileMode::O2SafePost:
    LO.SafetyMode = ir::LowerOptions::Safety::KeepLive;
    LO.Annotations = &Map;
    break;
  case CompileMode::Debug:
    LO.AllVarsInMemory = true;
    break;
  case CompileMode::DebugChecked:
    LO.AllVarsInMemory = true;
    LO.SafetyMode = ir::LowerOptions::Safety::Checked;
    LO.Annotations = &Map;
    break;
  }

  Result.Module = ir::lowerTranslationUnit(TU, LO, Diags);
  if (Diags.hasErrors()) {
    Result.Errors = renderedDiagnostics();
    return Result;
  }

  opt::OptPipelineOptions PO;
  PO.Level = (Options.Mode == CompileMode::Debug ||
              Options.Mode == CompileMode::DebugChecked)
                 ? opt::OptLevel::O0
                 : opt::OptLevel::O2;
  PO.Postprocess = Options.Mode == CompileMode::O2SafePost;
  Result.OptStats = opt::optimizeModule(Result.Module, PO);

#ifndef NDEBUG
  {
    std::vector<std::string> VerifyErrors;
    bool Verified = ir::verifyModule(Result.Module, VerifyErrors);
    assert(Verified && "optimized module failed IR verification");
    (void)Verified;
  }
#endif

  for (const ir::Function &F : Result.Module.Functions)
    if (F.Name != "__globals_init")
      Result.CodeSizeUnits += ir::functionSizeUnits(F);

  Result.Ok = true;
  return Result;
}

RoundTripResult gcsafe::driver::roundTripChecked(
    const std::string &Name, const std::string &Source,
    const vm::VMOptions &VMOpts, const annotate::AnnotatorOptions &Annot) {
  RoundTripResult Result;

  Compilation First(Name, Source);
  if (!First.parse()) {
    Result.Error = "original source failed to parse:\n" +
                   First.renderedDiagnostics();
    return Result;
  }
  Result.RenderedSource =
      First.annotatedSource(annotate::AnnotationMode::Checked, Annot);

  Compilation Second(Name + ".checked.c", Result.RenderedSource);
  CompileOptions CO;
  CO.Mode = CompileMode::Debug; // plain -g; the checks are source calls now
  CompileResult CR = Second.compile(CO);
  if (!CR.Ok) {
    Result.Error = "rendered checked source failed to compile:\n" +
                   CR.Errors + "\n--- rendered source ---\n" +
                   Result.RenderedSource;
    return Result;
  }
  vm::VM Machine(CR.Module, VMOpts);
  Result.Run = Machine.run();
  Result.Ok = Result.Run.Ok;
  if (!Result.Ok)
    Result.Error = Result.Run.Error;
  return Result;
}

vm::RunResult gcsafe::driver::compileAndRun(
    const std::string &Name, const std::string &Source, CompileMode Mode,
    const vm::VMOptions &VMOpts, const annotate::AnnotatorOptions &Annot) {
  Compilation C(Name, Source);
  CompileOptions CO;
  CO.Mode = Mode;
  CO.Annot = Annot;
  CompileResult CR = C.compile(CO);
  if (!CR.Ok) {
    vm::RunResult R;
    R.Ok = false;
    R.Error = "compilation failed:\n" + CR.Errors;
    return R;
  }
  vm::VM Machine(CR.Module, VMOpts);
  return Machine.run();
}
