//===- driver/Pipeline.cpp ------------------------------------*- C++ -*-===//

#include "driver/Pipeline.h"

#include "analysis/Mutate.h"
#include "annotate/SourceCheck.h"
#include "cfront/Lexer.h"
#include "ir/Verify.h"
#include "support/FaultInject.h"
#include "support/Hash.h"

#include <algorithm>
#include <cassert>
#include <cstring>

using namespace gcsafe;
using namespace gcsafe::driver;

const char *gcsafe::driver::compileModeName(CompileMode Mode) {
  switch (Mode) {
  case CompileMode::O2: return "-O2";
  case CompileMode::O2Safe: return "-O2 safe";
  case CompileMode::O2SafePost: return "-O2 safe+postproc";
  case CompileMode::Debug: return "-g";
  case CompileMode::DebugChecked: return "-g checked";
  }
  return "?";
}

bool VerifyMemo::lookup(const std::string &Key, const char *Pass,
                        std::vector<analysis::SafetyDiag> &Out,
                        bool &OkOut) {
  support::RankedGuard Lock(Mu);
  auto It = Map.find(Key);
  if (It == Map.end()) {
    Misses.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  Hits.fetch_add(1, std::memory_order_relaxed);
  OkOut = It->second.Ok;
  for (analysis::SafetyDiag D : It->second.Diags) {
    // The verdict is a function of the IR alone; the pass attribution is
    // the caller's pipeline position, so rewrite it on replay.
    D.Pass = Pass;
    Out.push_back(std::move(D));
  }
  return true;
}

void VerifyMemo::insert(const std::string &Key, bool Ok,
                        std::vector<analysis::SafetyDiag> Diags) {
  support::RankedGuard Lock(Mu);
  Map.emplace(Key, Entry{Ok, std::move(Diags)});
}

size_t VerifyMemo::entries() const {
  support::RankedGuard Lock(Mu);
  return Map.size();
}

bool gcsafe::driver::verifyFunctionSafetyMemo(
    VerifyMemo *Memo, const ir::Function &F,
    const analysis::SafetyVerifyOptions &Options,
    std::vector<analysis::SafetyDiag> &Out) {
  if (!Memo)
    return analysis::verifyFunctionSafety(F, Options, Out);
  std::string Key = support::contentHash(ir::printFunction(F));
  if (Options.CheckKillPlacement)
    Key += "+kp";
  bool Ok = true;
  if (Memo->lookup(Key, Options.Pass, Out, Ok))
    return Ok;
  std::vector<analysis::SafetyDiag> Fresh;
  Ok = analysis::verifyFunctionSafety(F, Options, Fresh);
  Memo->insert(Key, Ok, Fresh);
  for (analysis::SafetyDiag &D : Fresh)
    Out.push_back(std::move(D));
  return Ok;
}

Compilation::Compilation(std::string Name, std::string Source)
    : Buffer(std::move(Name), std::move(Source)) {
  Actions = std::make_unique<cfront::Sema>(Types, Diags, NodeArena);
}

Compilation::~Compilation() = default;

bool Compilation::parse() {
  if (Parsed)
    return ParseOk;
  Parsed = true;
  uint64_t StartNs = support::monotonicNowNs();
  Actions->declareRuntimeBuiltins(TU);
  cfront::Lexer Lex(Buffer, Diags);
  cfront::Parser P(Lex.lexAll(), *Actions);
  P.parseTranslationUnit(TU);
  ParseOk = !Diags.hasErrors();
  if (ParseOk)
    annotate::runSourceChecks(TU, Diags); // hidden-pointer hazard warnings
  ParseNs = support::monotonicNowNs() - StartNs;
  return ParseOk;
}

annotate::AnnotationMap
Compilation::annotate(const annotate::AnnotatorOptions &Options) {
  parse();
  return annotate::annotateTranslationUnit(TU, Options);
}

std::string
Compilation::annotatedSource(annotate::AnnotationMode Mode,
                             const annotate::AnnotatorOptions &Options) {
  annotate::AnnotationMap Map = annotate(Options);
  return annotate::renderAnnotatedSource(Buffer, Map, Mode);
}

CompileResult Compilation::compile(const CompileOptions &Options) {
  CompileResult Result;
  auto Phase = [&](const char *Name, uint64_t Ns) {
    Result.Stats.add(std::string("phase.") + Name + "_ns", Ns);
    if (Options.Trace)
      Options.Trace->emit("phase", Name, Ns);
  };

  if (!parse()) {
    Result.Errors = renderedDiagnostics();
    return Result;
  }
  Phase("parse", ParseNs);

  annotate::AnnotationMap Map;
  bool NeedsAnnotations = Options.Mode == CompileMode::O2Safe ||
                          Options.Mode == CompileMode::O2SafePost ||
                          Options.Mode == CompileMode::DebugChecked;
  if (NeedsAnnotations) {
    uint64_t StartNs = support::monotonicNowNs();
    Map = annotate::annotateTranslationUnit(TU, Options.Annot);
    Result.AnnotStats = Map.stats();
    Phase("annotate", support::monotonicNowNs() - StartNs);
  }

  ir::LowerOptions LO;
  switch (Options.Mode) {
  case CompileMode::O2:
    break;
  case CompileMode::O2Safe:
  case CompileMode::O2SafePost:
    LO.SafetyMode = ir::LowerOptions::Safety::KeepLive;
    LO.Annotations = &Map;
    break;
  case CompileMode::Debug:
    LO.AllVarsInMemory = true;
    break;
  case CompileMode::DebugChecked:
    LO.AllVarsInMemory = true;
    LO.SafetyMode = ir::LowerOptions::Safety::Checked;
    LO.Annotations = &Map;
    break;
  }

  uint64_t LowerStartNs = support::monotonicNowNs();
  Result.Module = ir::lowerTranslationUnit(TU, LO, Diags);
  Phase("lower", support::monotonicNowNs() - LowerStartNs);
  if (Diags.hasErrors()) {
    Result.Errors = renderedDiagnostics();
    return Result;
  }

  // Static GC-safety verification (docs/ANALYSIS.md). Layer 1 runs on
  // whatever IR exists at each checkpoint; the kill-placement audit
  // (layer 2) only once kills have been inserted, i.e. on the final
  // module.
  bool WantSafety = Options.Verify != SafetyVerify::None;
  uint64_t SafetyNs = 0;
  unsigned SafetyRuns = 0;
  auto CheckSafety = [&](const ir::Function &F, const char *Pass,
                         bool KillPlacement) {
    uint64_t StartNs = support::monotonicNowNs();
    analysis::SafetyVerifyOptions VO;
    VO.Pass = Pass;
    VO.CheckKillPlacement = KillPlacement;
    size_t Before = Result.SafetyDiags.size();
    verifyFunctionSafetyMemo(Options.Memo, F, VO, Result.SafetyDiags);
    uint64_t ElapsedNs = support::monotonicNowNs() - StartNs;
    SafetyNs += ElapsedNs;
    ++SafetyRuns;
    if (Options.Trace && Result.SafetyDiags.size() != Before)
      Options.Trace->emit("analysis", Pass, ElapsedNs,
                          unsigned(Result.SafetyDiags.size() - Before),
                          F.Name);
  };

  if (WantSafety)
    for (const ir::Function &F : Result.Module.Functions)
      CheckSafety(F, "(lower)", /*KillPlacement=*/false);

  opt::OptPipelineOptions PO;
  opt::OptLevel ModeLevel = (Options.Mode == CompileMode::Debug ||
                             Options.Mode == CompileMode::DebugChecked)
                                ? opt::OptLevel::O0
                                : opt::OptLevel::O2;
  PO.Level = std::min(ModeLevel, Options.MaxOptLevel);
  PO.Postprocess = Options.Mode == CompileMode::O2SafePost &&
                   PO.Level == opt::OptLevel::O2;
  PO.Stats = &Result.Stats;
  PO.Trace = Options.Trace;
  PO.PassMutator = Options.PassMutator;
  analysis::KeepLiveContinuity Continuity;
  bool EachPass = Options.Verify == SafetyVerify::EachPass;
  if (EachPass || Options.VerifyIREachPass)
    PO.PassCheck = [&](const char *Pass, const ir::Function &F) {
      if (std::strcmp(Pass, "(entry)") == 0) {
        if (EachPass)
          Continuity.record(F);
        return;
      }
      if (EachPass) {
        CheckSafety(F, Pass, /*KillPlacement=*/false);
        Continuity.check(F, Pass, Result.SafetyDiags);
      }
      if (Options.VerifyIREachPass)
        ir::verifyFunction(F, Result.IRVerifyErrors, Pass);
    };

  // Self-healing transactions (docs/ROBUSTNESS.md §5): the safety
  // verifier, structural IR verifier and KEEP_LIVE continuity check form
  // the commit gate for every pass; failpoints can corrupt a pass result
  // or simulate a verifier timeout.
  analysis::KeepLiveContinuity TxnContinuity;
  size_t CorruptSite = 0, VerifyTimeoutSite = 0;
  if (Options.Txn) {
    PassTransactions &Txn = *Options.Txn;
    if (Txn.Faults) {
      CorruptSite = Txn.Faults->siteId("opt.pass.corrupt");
      VerifyTimeoutSite = Txn.Faults->siteId("analysis.verify.timeout");
      auto UserMutator = PO.PassMutator;
      PO.PassMutator = [&Txn, &Result, UserMutator, CorruptSite,
                        &Options](const char *Pass, ir::Function &F) {
        if (UserMutator)
          UserMutator(Pass, F);
        if (!Txn.Faults->shouldFail(CorruptSite))
          return;
        std::vector<analysis::Mutation> Ms =
            analysis::enumerateFunctionMutations(F);
        if (Txn.CorruptKind >= 0) {
          Ms.erase(std::remove_if(Ms.begin(), Ms.end(),
                                  [&](const analysis::Mutation &Mu) {
                                    return static_cast<int>(Mu.Kind) !=
                                           Txn.CorruptKind;
                                  }),
                   Ms.end());
        }
        if (Ms.empty())
          return;
        const analysis::Mutation &Mu = Ms[Txn.Faults->draw() % Ms.size()];
        if (!analysis::applyMutation(F, Mu))
          return;
        ++Txn.CorruptionsApplied;
        Result.Stats.add("robust.fault.pass_corrupt");
        if (Options.Trace)
          Options.Trace->emit("robust", "fault.pass_corrupt", 0,
                              static_cast<unsigned>(Mu.Kind),
                              std::string(Pass) + ": " + Mu.Description);
      };
    }
    auto PrevCheck = PO.PassCheck;
    PO.PassCheck = [&TxnContinuity, PrevCheck](const char *Pass,
                                               const ir::Function &F) {
      // The transactional continuity baseline must track committed states
      // only; PassCheck runs after the commit/rollback decision.
      if (std::strcmp(Pass, "(entry)") == 0)
        TxnContinuity.record(F);
      if (PrevCheck)
        PrevCheck(Pass, F);
    };
    PO.Quarantine = &Txn.Quarantine;
    PO.PassDeadlineNs = Txn.PassDeadlineNs;
    PO.Rollbacks = &Txn.Rollbacks;
    PO.CommitGate = [&Txn, &TxnContinuity, VerifyTimeoutSite, &Options](
                        const char *Pass, const ir::Function &F,
                        std::string &Reason) {
      if (Txn.Faults && Txn.Faults->shouldFail(VerifyTimeoutSite)) {
        Reason = "verify_timeout";
        return false;
      }
      analysis::SafetyVerifyOptions VO;
      VO.Pass = Pass;
      VO.CheckKillPlacement = std::strcmp(Pass, "insert_kills") == 0;
      std::vector<analysis::SafetyDiag> Diags;
      if (!verifyFunctionSafetyMemo(Options.Memo, F, VO, Diags)) {
        Reason = "verify_failed:" + Diags.front().Kind;
        return false;
      }
      std::vector<std::string> IRErrors;
      if (!ir::verifyFunction(F, IRErrors, Pass)) {
        Reason = "ir_verify_failed";
        return false;
      }
      // A KEEP_LIVE that vanished while its derived value still has uses
      // is invisible to the point checks (the kill audit diffs only
      // recomputed-vs-actual kills); the pass-to-pass continuity snapshot
      // is what catches a deleted annotation. Check against a copy so a
      // veto leaves the baseline at the pre-pass (rolled-back) state.
      analysis::KeepLiveContinuity Candidate = TxnContinuity;
      Candidate.check(F, Pass, Diags);
      if (!Diags.empty()) {
        Reason = "verify_failed:" + Diags.front().Kind;
        return false;
      }
      TxnContinuity = std::move(Candidate);
      return true;
    };
  }
  uint64_t OptStartNs = support::monotonicNowNs();
  Result.OptStats = opt::optimizeModule(Result.Module, PO);
  Phase("optimize", support::monotonicNowNs() - OptStartNs);
  if (Options.Txn) {
    Result.Stats.set("robust.quarantined", Options.Txn->Quarantine.size());
    for (const std::string &Q : Options.Txn->Quarantine)
      if (Options.Trace)
        Options.Trace->emit("robust", "pass.quarantine", 0, 0, Q);
  }

  if (WantSafety) {
    // A transactionally quarantined insert_kills leaves registers unkilled
    // — pure false retention, which the placement audit would flag on
    // every register; skip layer 2 in that (already-degraded) case.
    bool KillAudit =
        !Options.Txn || !Options.Txn->Quarantine.count("insert_kills");
    for (const ir::Function &F : Result.Module.Functions)
      CheckSafety(F, "(final)", KillAudit);
    Result.SafetyOk = Result.SafetyDiags.empty();
    Result.Stats.add("analysis.verify.runs", SafetyRuns);
    Result.Stats.add("analysis.verify.diags", Result.SafetyDiags.size());
    Result.Stats.add("analysis.verify.ns", SafetyNs);
  }

#ifndef NDEBUG
  {
    uint64_t VerifyStartNs = support::monotonicNowNs();
    std::vector<std::string> VerifyErrors;
    bool Verified = ir::verifyModule(Result.Module, VerifyErrors);
    Phase("verify", support::monotonicNowNs() - VerifyStartNs);
    assert(Verified && "optimized module failed IR verification");
    (void)Verified;
  }
#endif

  for (const ir::Function &F : Result.Module.Functions)
    if (F.Name != "__globals_init")
      Result.CodeSizeUnits += ir::functionSizeUnits(F);

  Result.Ok = true;
  return Result;
}

namespace {

support::Json collectionEventToJson(const gc::CollectionEvent &E) {
  using support::Json;
  Json J = Json::object();
  J["index"] = Json::integer(E.Index);
  J["mark_ns"] = Json::integer(E.MarkNs);
  J["sweep_ns"] = Json::integer(E.SweepNs);
  J["pages_scanned"] = Json::integer(E.PagesScanned);
  J["words_scanned"] = Json::integer(E.WordsScanned);
  J["pointer_hits"] = Json::integer(E.PointerHits);
  J["marked_objects"] = Json::integer(E.MarkedObjects);
  J["freed_objects"] = Json::integer(E.FreedObjects);
  J["live_bytes"] = Json::integer(E.LiveBytes);
  J["interior_hits"] = Json::integer(E.InteriorHits);
  J["false_retention_candidates"] =
      Json::integer(E.FalseRetentionCandidates);
  return J;
}

} // namespace

support::Json gcsafe::driver::buildRunReport(const std::string &Input,
                                             CompileMode Mode,
                                             const std::string &Machine,
                                             const CompileResult &CR,
                                             const vm::RunResult *Run) {
  using support::Json;
  Json Root = Json::object();
  Root["schema"] = Json::string("gcsafe-run-report-v1");
  Root["input"] = Json::string(Input);
  Root["mode"] = Json::string(compileModeName(Mode));
  Root["machine"] = Json::string(Machine);

  Json Compile = Json::object();
  Compile["ok"] = Json::boolean(CR.Ok);
  Compile["code_size_units"] = Json::integer(uint64_t(CR.CodeSizeUnits));

  Json StatsTree = CR.Stats.toJson();
  if (const Json *Phases = StatsTree.get("phase"))
    Compile["phases_ns"] = *Phases;
  else
    Compile["phases_ns"] = Json::object();

  const annotate::AnnotatorStats &A = CR.AnnotStats;
  Json Annot = Json::object();
  Annot["keep_lives"] = Json::integer(uint64_t(A.KeepLives));
  Annot["incdec_expansions"] = Json::integer(uint64_t(A.IncDecExpansions));
  Annot["compound_assign_expansions"] =
      Json::integer(uint64_t(A.CompoundAssignExpansions));
  Annot["temps_introduced"] = Json::integer(uint64_t(A.TempsIntroduced));
  Annot["skipped_copies"] = Json::integer(uint64_t(A.SkippedCopies));
  Annot["skipped_call_results"] =
      Json::integer(uint64_t(A.SkippedCallResults));
  Annot["skipped_non_heap"] = Json::integer(uint64_t(A.SkippedNonHeap));
  Annot["skipped_at_calls_only"] =
      Json::integer(uint64_t(A.SkippedAtCallsOnly));
  Annot["slow_base_substitutions"] =
      Json::integer(uint64_t(A.SlowBaseSubstitutions));
  Annot["unhandled_complex_lvalues"] =
      Json::integer(uint64_t(A.UnhandledComplexLValues));
  Compile["annotator"] = std::move(Annot);

  if (const Json *Opt = StatsTree.get("opt"))
    Compile["passes"] = *Opt;
  else
    Compile["passes"] = Json::object();
  // Present only when the self-healing pipeline ran (gcsafe-cc
  // --self-heal): rollback/quarantine counters and the ladder outcome.
  if (const Json *Robust = StatsTree.get("robust"))
    Compile["robust"] = *Robust;
  Root["compile"] = std::move(Compile);

  if (Run) {
    const vm::RunResult &R = *Run;
    Json RJ = Json::object();
    RJ["ok"] = Json::boolean(R.Ok);
    RJ["exit_code"] = Json::integer(int64_t(R.ExitCode));
    if (R.WatchdogTimeout)
      RJ["watchdog_timeout"] = Json::boolean(true);
    if (!R.Error.empty())
      RJ["error"] = Json::string(R.Error);
    RJ["output"] = Json::string(R.Output);
    RJ["instructions"] = Json::integer(R.InstructionsExecuted);
    RJ["cycles"] = Json::integer(R.Cycles);

    Json Attr = Json::object();
    Attr["user"] = Json::integer(R.userCycles());
    Attr["keep_live"] = Json::integer(R.KeepLiveCycles);
    Attr["checks"] = Json::integer(R.CheckCycles);
    Attr["allocator"] = Json::integer(R.AllocatorCycles);
    Attr["spill"] = Json::integer(R.SpillCycles);
    RJ["cycle_attribution"] = std::move(Attr);
    RJ["keep_lives_executed"] = Json::integer(R.KeepLiveExecuted);
    RJ["kills_executed"] = Json::integer(R.KillsExecuted);

    Json Checks = Json::object();
    Checks["performed"] = Json::integer(R.ChecksPerformed);
    Checks["violations"] = Json::integer(R.CheckViolations);
    Checks["freed_accesses"] = Json::integer(R.FreedAccesses);
    RJ["checks"] = std::move(Checks);

    const gc::CollectorStats &G = R.Gc;
    Json GJ = Json::object();
    GJ["collections"] = Json::integer(uint64_t(G.Collections));
    GJ["alloc_count"] = Json::integer(uint64_t(G.AllocationCount));
    GJ["alloc_bytes"] = Json::integer(uint64_t(G.BytesRequested));
    GJ["heap_pages"] = Json::integer(uint64_t(G.HeapPages));
    GJ["live_bytes_after_last_gc"] =
        Json::integer(uint64_t(G.LiveBytesAfterLastGC));
    GJ["freed_objects_last_gc"] =
        Json::integer(uint64_t(G.FreedObjectsLastGC));
    GJ["mark_ns"] = Json::integer(G.MarkNs);
    GJ["sweep_ns"] = Json::integer(G.SweepNs);
    GJ["words_scanned"] = Json::integer(G.WordsScanned);
    GJ["pointer_hits"] = Json::integer(G.PointerHits);
    GJ["marked_objects"] = Json::integer(G.MarkedObjects);
    GJ["interior_pointer_hits"] = Json::integer(G.InteriorPointerHits);
    GJ["false_retention_candidates"] =
        Json::integer(G.FalseRetentionCandidates);

    Json Oom = Json::object();
    Oom["emergency_collections"] = Json::integer(G.EmergencyCollections);
    Oom["retries"] = Json::integer(G.OomRetriesPerformed);
    Oom["callback_invocations"] = Json::integer(G.OomCallbackInvocations);
    Oom["alloc_failures"] = Json::integer(G.AllocFailures);
    Oom["faults_injected"] = Json::integer(G.FaultsInjected);
    Oom["segment_backoffs"] = Json::integer(G.SegmentBackoffs);
    GJ["oom"] = std::move(Oom);

    Json Audit = Json::object();
    Audit["runs"] = Json::integer(G.AuditsRun);
    Audit["violations"] = Json::integer(G.AuditViolations);
    GJ["audit"] = std::move(Audit);
    GJ["deadline_exceeded"] = Json::integer(G.GcDeadlineExceeded);

    Json Events = Json::array();
    for (const gc::CollectionEvent &E : G.Events)
      Events.push(collectionEventToJson(E));
    GJ["events"] = std::move(Events);
    RJ["gc"] = std::move(GJ);

    Root["run"] = std::move(RJ);
  }
  return Root;
}

support::Json gcsafe::driver::buildLintReport(const std::string &Input,
                                              CompileMode Mode,
                                              bool EachPass,
                                              const CompileResult &CR,
                                              const SourceBuffer *Buffer) {
  using support::Json;
  Json Root = Json::object();
  Root["schema"] = Json::string("gcsafe-lint-v1");
  Root["input"] = Json::string(Input);
  Root["mode"] = Json::string(compileModeName(Mode));
  Root["verify"] = Json::string(EachPass ? "each-pass" : "final");
  Root["clean"] = Json::boolean(CR.SafetyDiags.empty());

  Json Diags = Json::array();
  for (const analysis::SafetyDiag &D : CR.SafetyDiags) {
    Json J = Json::object();
    J["function"] = Json::string(D.Function);
    J["block"] = Json::integer(uint64_t(D.Block));
    J["index"] = Json::integer(uint64_t(D.Index));
    uint64_t Line = 0;
    if (Buffer && D.SrcOffset != ~0u && D.SrcOffset <= Buffer->size())
      Line = Buffer->lineColumn(SourceLocation(D.SrcOffset)).Line;
    J["line"] = Json::integer(Line);
    J["pass"] = Json::string(D.Pass);
    J["kind"] = Json::string(D.Kind);
    J["derived"] = Json::integer(
        D.Derived == ir::NoReg ? int64_t(-1) : int64_t(D.Derived));
    J["base"] =
        Json::integer(D.Base == ir::NoReg ? int64_t(-1) : int64_t(D.Base));
    J["message"] = Json::string(D.Message);
    Diags.push(std::move(J));
  }
  Root["diagnostics"] = std::move(Diags);
  return Root;
}

RoundTripResult gcsafe::driver::roundTripChecked(
    const std::string &Name, const std::string &Source,
    const vm::VMOptions &VMOpts, const annotate::AnnotatorOptions &Annot) {
  RoundTripResult Result;

  Compilation First(Name, Source);
  if (!First.parse()) {
    Result.Error = "original source failed to parse:\n" +
                   First.renderedDiagnostics();
    return Result;
  }
  Result.RenderedSource =
      First.annotatedSource(annotate::AnnotationMode::Checked, Annot);

  Compilation Second(Name + ".checked.c", Result.RenderedSource);
  CompileOptions CO;
  CO.Mode = CompileMode::Debug; // plain -g; the checks are source calls now
  CompileResult CR = Second.compile(CO);
  if (!CR.Ok) {
    Result.Error = "rendered checked source failed to compile:\n" +
                   CR.Errors + "\n--- rendered source ---\n" +
                   Result.RenderedSource;
    return Result;
  }
  vm::VM Machine(CR.Module, VMOpts);
  Result.Run = Machine.run();
  Result.Ok = Result.Run.Ok;
  if (!Result.Ok)
    Result.Error = Result.Run.Error;
  return Result;
}

vm::RunResult gcsafe::driver::compileAndRun(
    const std::string &Name, const std::string &Source, CompileMode Mode,
    const vm::VMOptions &VMOpts, const annotate::AnnotatorOptions &Annot) {
  Compilation C(Name, Source);
  CompileOptions CO;
  CO.Mode = Mode;
  CO.Annot = Annot;
  CompileResult CR = C.compile(CO);
  if (!CR.Ok) {
    vm::RunResult R;
    R.Ok = false;
    R.Error = "compilation failed:\n" + CR.Errors;
    return R;
  }
  vm::VM Machine(CR.Module, VMOpts);
  return Machine.run();
}
