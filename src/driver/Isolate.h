//===- driver/Isolate.h - Fork-isolated execution helpers ------*- C++ -*-===//
//
// Part of the gcsafe project, a reproduction of Boehm, "Simple
// Garbage-Collector-Safety" (PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The crash-isolation primitives shared by gcsafe-batch (fork workers)
/// and gcsafe-serve --isolate (forked compile sandboxes): run a callback
/// in a child process under a parent-enforced SIGKILL deadline, classify
/// the reaped wait status, and step the degradation ladder for a
/// crash/timeout retry (docs/ROBUSTNESS.md §6, §8).
///
/// The contract that makes one SIGSEGV cost one request instead of the
/// process: the child takes everything it needs by value, writes its
/// result to the pipe fd it is handed, and exits. It must never touch a
/// mutex, thread or shared structure of the parent — a fork from a
/// multithreaded process only reproduces the calling thread, so any lock
/// another thread held at fork time is held forever in the child.
///
//===----------------------------------------------------------------------===//

#ifndef GCSAFE_DRIVER_ISOLATE_H
#define GCSAFE_DRIVER_ISOLATE_H

#include "driver/SelfHeal.h"

#include <cstdint>
#include <functional>
#include <string>

namespace gcsafe {
namespace driver {

/// What happened to one forked sandbox attempt.
struct SandboxOutcome {
  enum class Status {
    Exited,    ///< The child exited; ExitCode holds its status.
    Signaled,  ///< The child died on a signal; Signal holds which.
    TimedOut,  ///< The parent SIGKILLed the child at the deadline.
    SpawnError ///< pipe()/fork() failed; nothing ran.
  };
  Status St = Status::SpawnError;
  int ExitCode = 0;
  int Signal = 0;
  uint64_t DurationMs = 0;
  std::string Payload; ///< Everything the child wrote to its payload fd.
};

/// Runs \p Child in a forked process under a wall-clock timeout enforced
/// by the parent (SIGKILL past the deadline; \p TimeoutMs 0 = none). The
/// callback's return value becomes the child's exit status; whatever it
/// writes to the fd it is handed comes back in Payload. The parent drains
/// the pipe while the child runs, so payloads larger than the pipe buffer
/// cannot deadlock. Payload is returned even for Signaled/TimedOut
/// children (it is whatever arrived before death — usually truncated).
SandboxOutcome runInSandbox(const std::function<int(int PayloadFd)> &Child,
                            uint64_t TimeoutMs);

/// One step down the degradation ladder for a crash/timeout retry: a
/// failure at full optimization often clears at a simpler rung.
/// Quarantined re-enters at PeepholeOnly; Unoptimized is the floor.
OptRung lowerRung(OptRung R);

/// Maps a worker exit code (support/ExitCodes.h) to a triage outcome
/// token: "ok", "degraded", "usage", "safety", "timeout", "overloaded",
/// "crashed", or "error".
const char *outcomeForExit(int ExitCode);

/// One reaped wait status, classified. "timeout" covers both the parent's
/// SIGKILL-on-deadline and the worker's own watchdog exit.
struct WaitClassification {
  const char *Outcome = "error"; ///< "timeout", "signal", or exit token.
  int ExitCode = 0;              ///< Valid when the child exited.
  int Signal = 0;                ///< Valid for "timeout" / "signal".
  std::string DefaultDetail;     ///< Human text when the worker wrote none.
};
WaitClassification classifyWaitStatus(int Status, bool TimedOut);

} // namespace driver
} // namespace gcsafe

#endif // GCSAFE_DRIVER_ISOLATE_H
