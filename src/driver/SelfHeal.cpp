//===- driver/SelfHeal.cpp ------------------------------------*- C++ -*-===//

#include "driver/SelfHeal.h"

#include "analysis/SafetyVerifier.h"
#include "support/FaultInject.h"

#include <sstream>

using namespace gcsafe;
using namespace gcsafe::driver;

const char *gcsafe::driver::optRungName(OptRung R) {
  switch (R) {
  case OptRung::Full: return "full";
  case OptRung::Quarantined: return "quarantined";
  case OptRung::PeepholeOnly: return "peephole";
  case OptRung::Unoptimized: return "unoptimized";
  }
  return "?";
}

bool gcsafe::driver::parseOptRung(const std::string &Text, OptRung &Out) {
  if (Text == "full") {
    Out = OptRung::Full;
    return true;
  }
  if (Text == "peephole") {
    Out = OptRung::PeepholeOnly;
    return true;
  }
  if (Text == "unoptimized") {
    Out = OptRung::Unoptimized;
    return true;
  }
  return false;
}

namespace {

opt::OptLevel rungLevel(OptRung R) {
  switch (R) {
  case OptRung::Full:
  case OptRung::Quarantined:
    return opt::OptLevel::O2;
  case OptRung::PeepholeOnly:
    return opt::OptLevel::Peephole;
  case OptRung::Unoptimized:
    return opt::OptLevel::O0;
  }
  return opt::OptLevel::O0;
}

OptRung nextAttempt(OptRung R) {
  switch (R) {
  case OptRung::Full:
  case OptRung::Quarantined:
    return OptRung::PeepholeOnly;
  case OptRung::PeepholeOnly:
    return OptRung::Unoptimized;
  case OptRung::Unoptimized:
    return OptRung::Unoptimized;
  }
  return OptRung::Unoptimized;
}

} // namespace

CompileResult
gcsafe::driver::compileSelfHealing(Compilation &C, const CompileOptions &Base,
                                   const SelfHealOptions &Options,
                                   SelfHealReport &Report) {
  PassTransactions Txn;
  Txn.PassDeadlineNs = Options.PassDeadlineNs;
  Txn.Faults = Options.Faults;
  Txn.CorruptKind = Options.CorruptKind;

  size_t VerifyTimeoutSite = 0;
  if (Options.Faults)
    VerifyTimeoutSite = Options.Faults->siteId("analysis.verify.timeout");

  OptRung Rung = Options.StartRung == OptRung::Quarantined
                     ? OptRung::Full
                     : Options.StartRung;
  CompileResult CR;
  for (;;) {
    ++Report.Attempts;
    CompileOptions O = Base;
    O.Txn = &Txn;
    O.MaxOptLevel = rungLevel(Rung);
    CR = C.compile(O);

    bool AtFloor = Rung == OptRung::Unoptimized;
    bool Committed = false;
    std::string Why;
    if (!CR.Ok) {
      Why = "compile_failed";
    } else if (Options.Faults &&
               Options.Faults->shouldFail(VerifyTimeoutSite)) {
      // Final per-rung verification "timed out". At the floor there is
      // nowhere left to descend and an unoptimized, transactionally
      // compiled module is the conservative result — accept it as a
      // degraded success rather than fail the compilation outright.
      Why = "verify_timeout";
      Committed = AtFloor;
    } else {
      analysis::SafetyVerifyOptions VO;
      VO.Pass = "(selfheal)";
      // A rolled-back insert_kills leaves registers unkilled — pure false
      // retention, which is GC-safe; the placement audit would flag every
      // missing kill, so it only gates rungs where insert_kills committed.
      VO.CheckKillPlacement = !Txn.Quarantine.count("insert_kills");
      std::vector<analysis::SafetyDiag> Diags;
      bool Verified = true;
      for (const ir::Function &F : CR.Module.Functions)
        Verified = verifyFunctionSafetyMemo(Base.Memo, F, VO, Diags) &&
                   Verified;
      if (Verified) {
        Committed = true;
      } else {
        Why = "verify_failed:" + Diags.front().Kind;
        CR.SafetyDiags.insert(CR.SafetyDiags.end(), Diags.begin(),
                              Diags.end());
      }
    }

    if (Committed || AtFloor) {
      Report.Ok = Committed;
      Report.Rung = Rung == OptRung::Full && !Txn.Quarantine.empty()
                        ? OptRung::Quarantined
                        : Rung;
      break;
    }

    OptRung Next = nextAttempt(Rung);
    std::ostringstream OS;
    OS << "descend: " << optRungName(Rung) << " -> " << optRungName(Next)
       << " (" << Why << ")";
    Report.Log.push_back(OS.str());
    if (Base.Trace)
      Base.Trace->emit("robust", "ladder.descend",
                       static_cast<uint64_t>(Next),
                       static_cast<uint64_t>(Rung), OS.str());
    Rung = Next;
  }

  Report.Rollbacks = Txn.Rollbacks;
  Report.Quarantined.assign(Txn.Quarantine.begin(), Txn.Quarantine.end());
  for (const opt::PassRollback &R : Txn.Rollbacks)
    Report.Log.push_back("rollback: " + R.Pass + " in " + R.Function + ": " +
                         R.Reason);
  Report.Degraded =
      !Txn.Rollbacks.empty() || Report.Rung != OptRung::Full || !Report.Ok;

  CR.Stats.set("robust.ladder.attempts", Report.Attempts);
  CR.Stats.set("robust.ladder.rung", static_cast<uint64_t>(Report.Rung));
  CR.Stats.setString("robust.ladder.rung_name", optRungName(Report.Rung));
  CR.Stats.set("robust.rollbacks_total", Txn.Rollbacks.size());
  CR.Stats.set("robust.degraded", Report.Degraded ? 1 : 0);
  if (Base.Trace)
    Base.Trace->emit("robust", "ladder.commit",
                     static_cast<uint64_t>(Report.Rung), Report.Attempts,
                     std::string(optRungName(Report.Rung)) +
                         (Report.Ok ? "" : " (failed)"));
  return CR;
}
