//===- driver/SelfHeal.h - Degradation-ladder compilation ------*- C++ -*-===//
//
// Part of the gcsafe project, a reproduction of Boehm, "Simple
// Garbage-Collector-Safety" (PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The self-healing compilation ladder (docs/ROBUSTNESS.md §5). A
/// compilation request enters at the top rung and descends one rung at a
/// time until the module passes final GC-safety verification:
///
///   Full         — the mode's normal pipeline, transactionally: every
///                  pass is snapshotted, commit-gated by the safety
///                  verifier + IR verifier + KEEP_LIVE continuity, and
///                  rolled back + quarantined on veto;
///   Quarantined  — not an attempt of its own: the reported rung when the
///                  Full attempt committed but one or more passes were
///                  quarantined along the way;
///   PeepholeOnly — copy coalescing and simplification only;
///   Unoptimized  — no optimization (kills still inserted). The ladder's
///                  guaranteed floor: a verifier *timeout* here is
///                  accepted (degraded success), a verifier *failure* is
///                  not.
///
/// Every descent, rollback and quarantine surfaces as "robust.*" stats
/// keys and cat="robust" trace events so a run report shows exactly how a
/// result was obtained.
///
//===----------------------------------------------------------------------===//

#ifndef GCSAFE_DRIVER_SELFHEAL_H
#define GCSAFE_DRIVER_SELFHEAL_H

#include "driver/Pipeline.h"

#include <cstdint>
#include <string>
#include <vector>

namespace gcsafe {
namespace driver {

/// Rungs of the degradation ladder, best first. Numeric values are stable
/// (gcsafe-run-report-v1 "robust.ladder.rung").
enum class OptRung : uint8_t {
  Full = 0,
  Quarantined = 1,
  PeepholeOnly = 2,
  Unoptimized = 3,
};

const char *optRungName(OptRung R);

/// Parses a --opt-rung= value ("full", "peephole", "unoptimized") into an
/// entry rung. "quarantined" is not enterable (it is an outcome, not an
/// attempt) and is rejected. Returns false on unknown names.
bool parseOptRung(const std::string &Text, OptRung &Out);

struct SelfHealOptions {
  /// Rung the ladder starts at (a batch retry re-enters one rung lower).
  OptRung StartRung = OptRung::Full;
  /// Forwarded to PassTransactions::PassDeadlineNs.
  uint64_t PassDeadlineNs = 0;
  /// Forwarded to PassTransactions::Faults ("opt.pass.corrupt",
  /// "analysis.verify.timeout"); also consulted for the final per-rung
  /// verification's timeout failpoint.
  support::FaultInjector *Faults = nullptr;
  /// Forwarded to PassTransactions::CorruptKind.
  int CorruptKind = -1;
};

struct SelfHealReport {
  bool Ok = false;
  /// True when the result was obtained through any recovery action:
  /// a rollback happened, a pass is quarantined, or the ladder descended.
  bool Degraded = false;
  /// The rung the committed result was produced at.
  OptRung Rung = OptRung::Full;
  unsigned Attempts = 0;
  std::vector<opt::PassRollback> Rollbacks;
  std::vector<std::string> Quarantined;
  /// Human-readable event lines ("rollback: ...", "descend: ...").
  std::vector<std::string> Log;
};

/// Compiles \p C down the ladder. \p Base supplies the mode, annotator
/// options and trace sink; its Txn/MaxOptLevel fields are overwritten per
/// attempt. The returned CompileResult is the committed attempt's (or the
/// last attempt's, when every rung failed) and carries the
/// "robust.ladder.*" stats keys.
CompileResult compileSelfHealing(Compilation &C, const CompileOptions &Base,
                                 const SelfHealOptions &Options,
                                 SelfHealReport &Report);

} // namespace driver
} // namespace gcsafe

#endif // GCSAFE_DRIVER_SELFHEAL_H
