//===- driver/Pipeline.h - End-to-end compilation pipelines ----*- C++ -*-===//
//
// Part of the gcsafe project, a reproduction of Boehm, "Simple
// Garbage-Collector-Safety" (PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Composes the frontend, annotator, lowering, optimizer and VM into the
/// compilation modes the paper measures:
///
///   O2           — optimized, *not* GC-safe (the baseline each table's
///                  slowdown percentages are relative to);
///   O2Safe       — "-O, safe": optimized with KEEP_LIVE annotations;
///   O2SafePost   — O2Safe plus the peephole postprocessor (the paper's
///                  "A Postprocessor" results);
///   Debug        — "-g": fully debuggable, all variables in memory,
///                  inherently GC-safe;
///   DebugChecked — "-g, checked": debuggable plus GC_same_obj /
///                  GC_pre_incr pointer-arithmetic checking.
///
//===----------------------------------------------------------------------===//

#ifndef GCSAFE_DRIVER_PIPELINE_H
#define GCSAFE_DRIVER_PIPELINE_H

#include "analysis/SafetyVerifier.h"
#include "annotate/Annotator.h"
#include "cfront/Parser.h"
#include "cfront/Sema.h"
#include "ir/IR.h"
#include "ir/Lower.h"
#include "opt/Passes.h"
#include "support/RankedMutex.h"
#include "support/Stats.h"
#include "support/Trace.h"
#include "vm/VM.h"

#include <atomic>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>

namespace gcsafe {
namespace support {
class FaultInjector;
} // namespace support

namespace driver {

enum class CompileMode {
  O2,
  O2Safe,
  O2SafePost,
  Debug,
  DebugChecked,
};

const char *compileModeName(CompileMode Mode);

/// When (and how often) the static GC-safety verifier runs during
/// compilation. See docs/ANALYSIS.md.
enum class SafetyVerify {
  None,     ///< Verifier off (default).
  Final,    ///< Once, on the fully optimized module.
  EachPass, ///< After lowering and after every optimizer pass — bisects
            ///< the offending pass when a violation appears.
};

/// Shared state of the self-healing transactional pipeline
/// (docs/ROBUSTNESS.md §5). One instance lives across the degradation
/// ladder's attempts, so a pass quarantined at one rung stays quarantined
/// at the next.
struct PassTransactions {
  /// Pass names vetoed by the commit gate; skipped from then on.
  std::set<std::string> Quarantine;
  /// Per-pass wall budget in ns (0 = none); exceeding it is a fault.
  uint64_t PassDeadlineNs = 0;
  /// Optional failpoints: "opt.pass.corrupt" applies one Mutate.h
  /// corruption operator to the function after a pass when it fires;
  /// "analysis.verify.timeout" makes the commit gate act as if the
  /// verifier timed out (conservative veto).
  support::FaultInjector *Faults = nullptr;
  /// Restrict injected corruption to one analysis::MutationKind
  /// (-1 = injector-drawn choice among all applicable operators).
  int CorruptKind = -1;
  /// Appended with one record per rollback, across all attempts.
  std::vector<opt::PassRollback> Rollbacks;
  /// Injected corruptions actually applied (a fire with no applicable
  /// mutation site applies nothing and is not counted).
  uint64_t CorruptionsApplied = 0;
};

/// Content-addressed memo of per-function safety-verifier results
/// (docs/SERVING.md). Keyed on a stable hash of the function's printed IR
/// plus the verification flags, so a function whose IR a pass left
/// untouched — the overwhelmingly common case under each-pass
/// verification — is never re-verified, within one compile or across
/// requests. Verification is a pure function of (IR, options), so a memo
/// shared across requests cannot leak per-request state; the recorded
/// diagnostics' pass attribution is rewritten to the querying pass on
/// replay. Thread-safe: one instance is shared by every worker of a
/// compile service (serve::CompileService).
class VerifyMemo {
public:
  /// True when a result for \p Key is recorded; appends the recorded
  /// diagnostics (re-attributed to \p Pass) to \p Out and returns the
  /// recorded verdict in \p OkOut.
  bool lookup(const std::string &Key, const char *Pass,
              std::vector<analysis::SafetyDiag> &Out, bool &OkOut);
  void insert(const std::string &Key, bool Ok,
              std::vector<analysis::SafetyDiag> Diags);

  uint64_t hits() const { return Hits.load(); }
  uint64_t misses() const { return Misses.load(); }
  size_t entries() const;

private:
  struct Entry {
    bool Ok = true;
    std::vector<analysis::SafetyDiag> Diags;
  };
  mutable support::RankedMutex Mu{support::LockRank::DriverVerifyMemo,
                                  "driver.verify_memo"};
  std::unordered_map<std::string, Entry> Map GCSAFE_GUARDED_BY(Mu);
  std::atomic<uint64_t> Hits{0}, Misses{0};
};

/// Runs the per-function safety verifier through \p Memo (when non-null):
/// a hit replays the recorded verdict and diagnostics, a miss verifies
/// and records. The memo key is the stable content hash of the printed
/// function IR plus the kill-placement flag.
bool verifyFunctionSafetyMemo(VerifyMemo *Memo, const ir::Function &F,
                              const analysis::SafetyVerifyOptions &Options,
                              std::vector<analysis::SafetyDiag> &Out);

struct CompileOptions {
  CompileMode Mode = CompileMode::O2;
  annotate::AnnotatorOptions Annot;
  /// Optional event sink: phase and pass events are emitted here.
  support::TraceBuffer *Trace = nullptr;
  /// Static GC-safety verification (gcsafe-cc --verify-safety).
  SafetyVerify Verify = SafetyVerify::None;
  /// Run the structural IR verifier after every optimizer pass too
  /// (gcsafe-cc --verify-ir=each-pass); violations land in
  /// CompileResult::IRVerifyErrors with the pass name.
  bool VerifyIREachPass = false;
  /// Test hook forwarded to the optimizer: mutates the IR after the named
  /// pass, emulating a buggy optimization for verifier self-tests.
  std::function<void(const char *Pass, ir::Function &F)> PassMutator;
  /// Self-healing transaction context (driver/SelfHeal.h). When set,
  /// every optimizer pass runs transactionally: the safety verifier,
  /// structural IR verifier and KEEP_LIVE continuity check form the
  /// commit gate, and a vetoed pass is rolled back and quarantined.
  PassTransactions *Txn = nullptr;
  /// Degradation-ladder ceiling on the optimizer: the pipeline never runs
  /// above this level regardless of Mode.
  opt::OptLevel MaxOptLevel = opt::OptLevel::O2;
  /// Optional per-function verification memo (docs/SERVING.md). When set,
  /// every safety-verifier invocation — the each-pass checkpoints and the
  /// transactional commit gate — first consults the memo by content hash.
  VerifyMemo *Memo = nullptr;
};

struct CompileResult {
  bool Ok = false;
  std::string Errors;
  ir::Module Module;
  unsigned CodeSizeUnits = 0; ///< Processed code only (no runtime).
  annotate::AnnotatorStats AnnotStats;
  opt::PassStats OptStats;
  /// Phase wall times ("phase.parse_ns", "phase.annotate_ns",
  /// "phase.lower_ns", "phase.optimize_ns", "phase.verify_ns") plus the
  /// optimizer's per-pass counters ("opt.<pass>.*", "opt.total.*") and,
  /// when the safety verifier ran, "analysis.verify.*". See
  /// docs/OBSERVABILITY.md.
  support::Stats Stats;
  /// Static safety verifier results (empty/true unless Verify was set).
  std::vector<analysis::SafetyDiag> SafetyDiags;
  bool SafetyOk = true;
  /// Structural IR verifier violations from VerifyIREachPass.
  std::vector<std::string> IRVerifyErrors;
};

/// One source file's frontend state; reusable across modes (the AST is
/// parsed once, annotated and lowered per mode).
class Compilation {
public:
  Compilation(std::string Name, std::string Source);
  Compilation(const Compilation &) = delete;
  Compilation &operator=(const Compilation &) = delete;
  ~Compilation();

  /// Lex + parse + typecheck; returns false on errors.
  bool parse();

  const cfront::TranslationUnit &tu() const { return TU; }
  const SourceBuffer &buffer() const { return Buffer; }
  DiagnosticsEngine &diags() { return Diags; }
  std::string renderedDiagnostics() const { return Diags.render(Buffer); }

  /// Runs the annotator and renders the annotated C source (the paper's
  /// preprocessor output).
  std::string annotatedSource(annotate::AnnotationMode Mode,
                              const annotate::AnnotatorOptions &Options = {});

  /// Runs the annotator alone (for inspection/tests).
  annotate::AnnotationMap annotate(const annotate::AnnotatorOptions &Options = {});

  /// Full middle-end for one mode.
  CompileResult compile(const CompileOptions &Options);

private:
  SourceBuffer Buffer;
  DiagnosticsEngine Diags;
  Arena NodeArena;
  cfront::TypeContext Types;
  std::unique_ptr<cfront::Sema> Actions;
  cfront::TranslationUnit TU;
  bool Parsed = false;
  bool ParseOk = false;
  uint64_t ParseNs = 0; ///< Wall time of the (single) frontend pass.
};

/// Convenience: parse, compile in \p Mode, run under \p VMOpts. On frontend
/// or middle-end failure returns a RunResult with Ok=false and the
/// diagnostics in Error.
vm::RunResult compileAndRun(const std::string &Name,
                            const std::string &Source, CompileMode Mode,
                            const vm::VMOptions &VMOpts = {},
                            const annotate::AnnotatorOptions &Annot = {});

/// The source-level checking path, end to end: annotate in Checked mode,
/// render the (plain ANSI C) preprocessor output, re-parse it with a fresh
/// frontend as if it were any user program, compile it debuggable, and run
/// it — the GC_same_obj / GC_pre_incr / GC_post_incr calls in the rendered
/// text drive the collector's checker at run time. This validates the
/// paper's claim that "it should be possible to make the output in
/// source-code-checking mode usable with any ANSI C compiler".
struct RoundTripResult {
  bool Ok = false;
  std::string Error;
  std::string RenderedSource;
  vm::RunResult Run;
};

RoundTripResult roundTripChecked(const std::string &Name,
                                 const std::string &Source,
                                 const vm::VMOptions &VMOpts = {},
                                 const annotate::AnnotatorOptions &Annot = {});

/// Serializes one compilation (and optionally its execution) into the
/// gcsafe-run-report-v1 JSON schema documented in docs/OBSERVABILITY.md:
/// per-pass optimizer counters, phase wall times, annotator statistics,
/// and — when \p Run is non-null — VM cycle attribution plus the
/// collector's per-collection event records. This is the document behind
/// gcsafe-cc --stats-json.
support::Json buildRunReport(const std::string &Input, CompileMode Mode,
                             const std::string &Machine,
                             const CompileResult &CR,
                             const vm::RunResult *Run);

/// Serializes the safety verifier's diagnostics into the gcsafe-lint-v1
/// JSON schema (docs/ANALYSIS.md) behind gcsafe-cc --lint-json. When
/// \p Buffer is non-null, diagnostics carrying a source offset gain a
/// 1-based "line"; unknown locations serialize as line 0.
support::Json buildLintReport(const std::string &Input, CompileMode Mode,
                              bool EachPass, const CompileResult &CR,
                              const SourceBuffer *Buffer);

} // namespace driver
} // namespace gcsafe

#endif // GCSAFE_DRIVER_PIPELINE_H
