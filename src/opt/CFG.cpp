//===- opt/CFG.cpp --------------------------------------------*- C++ -*-===//

#include "opt/CFG.h"

#include <algorithm>
#include <cassert>

using namespace gcsafe;
using namespace gcsafe::opt;
using namespace gcsafe::ir;

void gcsafe::opt::blockSuccessors(const BasicBlock &B,
                                  std::vector<uint32_t> &Out) {
  Out.clear();
  if (B.Insts.empty())
    return;
  const Instruction &T = B.Insts.back();
  switch (T.Op) {
  case Opcode::Jmp:
    Out.push_back(T.Blk1);
    return;
  case Opcode::Br:
    Out.push_back(T.Blk1);
    if (T.Blk2 != T.Blk1)
      Out.push_back(T.Blk2);
    return;
  default:
    return; // Ret or fallthrough-less block
  }
}

unsigned RegSet::count() const {
  unsigned N = 0;
  for (uint64_t W : Words)
    N += static_cast<unsigned>(__builtin_popcountll(W));
  return N;
}

//===----------------------------------------------------------------------===//
// CFGInfo
//===----------------------------------------------------------------------===//

CFGInfo::CFGInfo(const Function &FIn) : F(FIn) {
  size_t N = F.Blocks.size();
  Succs.resize(N);
  Preds.resize(N);
  Reachable.assign(N, false);
  RPOIndex.assign(N, ~0u);
  IDom.assign(N, ~0u);

  for (size_t B = 0; B < N; ++B)
    blockSuccessors(F.Blocks[B], Succs[B]);

  // Post-order DFS from entry (block 0).
  std::vector<uint32_t> PostOrder;
  std::vector<std::pair<uint32_t, size_t>> Stack;
  std::vector<bool> Visited(N, false);
  if (N != 0) {
    Stack.emplace_back(0, 0);
    Visited[0] = true;
    while (!Stack.empty()) {
      auto &[B, NextSucc] = Stack.back();
      if (NextSucc < Succs[B].size()) {
        uint32_t S = Succs[B][NextSucc++];
        if (!Visited[S]) {
          Visited[S] = true;
          Stack.emplace_back(S, 0);
        }
      } else {
        PostOrder.push_back(B);
        Stack.pop_back();
      }
    }
  }
  RPO.assign(PostOrder.rbegin(), PostOrder.rend());
  for (size_t I = 0; I < RPO.size(); ++I) {
    RPOIndex[RPO[I]] = static_cast<uint32_t>(I);
    Reachable[RPO[I]] = true;
  }
  for (size_t B = 0; B < N; ++B)
    if (Reachable[B])
      for (uint32_t S : Succs[B])
        Preds[S].push_back(static_cast<uint32_t>(B));

  computeDominators();
}

void CFGInfo::computeDominators() {
  // Cooper/Harvey/Kennedy iterative algorithm over RPO.
  if (RPO.empty())
    return;
  IDom[RPO[0]] = RPO[0];
  bool Changed = true;
  auto Intersect = [&](uint32_t A, uint32_t B) {
    while (A != B) {
      while (RPOIndex[A] > RPOIndex[B])
        A = IDom[A];
      while (RPOIndex[B] > RPOIndex[A])
        B = IDom[B];
    }
    return A;
  };
  while (Changed) {
    Changed = false;
    for (size_t I = 1; I < RPO.size(); ++I) {
      uint32_t B = RPO[I];
      uint32_t NewIDom = ~0u;
      for (uint32_t P : Preds[B]) {
        if (IDom[P] == ~0u)
          continue;
        NewIDom = NewIDom == ~0u ? P : Intersect(P, NewIDom);
      }
      if (NewIDom != ~0u && IDom[B] != NewIDom) {
        IDom[B] = NewIDom;
        Changed = true;
      }
    }
  }
}

bool CFGInfo::dominates(uint32_t A, uint32_t B) const {
  if (!Reachable[A] || !Reachable[B])
    return false;
  uint32_t Entry = RPO.front();
  while (true) {
    if (B == A)
      return true;
    if (B == Entry)
      return A == Entry;
    B = IDom[B];
    if (B == ~0u)
      return false;
  }
}

//===----------------------------------------------------------------------===//
// Loops
//===----------------------------------------------------------------------===//

std::vector<LoopInfo> gcsafe::opt::findLoops(const Function &F,
                                             const CFGInfo &CFG) {
  std::vector<LoopInfo> Loops;
  size_t N = F.Blocks.size();

  // Collect back edges and group by header.
  std::vector<std::vector<uint32_t>> Latches(N);
  for (size_t B = 0; B < N; ++B) {
    if (!CFG.isReachable(static_cast<uint32_t>(B)))
      continue;
    for (uint32_t S : CFG.successors()[B])
      if (CFG.dominates(S, static_cast<uint32_t>(B)))
        Latches[S].push_back(static_cast<uint32_t>(B));
  }

  for (size_t H = 0; H < N; ++H) {
    if (Latches[H].empty())
      continue;
    LoopInfo Loop;
    Loop.Header = static_cast<uint32_t>(H);
    // Natural loop body: blocks that reach a latch without passing H.
    std::vector<bool> InLoop(N, false);
    InLoop[H] = true;
    std::vector<uint32_t> Work = Latches[H];
    for (uint32_t L : Work)
      InLoop[L] = true;
    while (!Work.empty()) {
      uint32_t B = Work.back();
      Work.pop_back();
      for (uint32_t P : CFG.predecessors()[B])
        if (!InLoop[P]) {
          InLoop[P] = true;
          Work.push_back(P);
        }
    }
    for (size_t B = 0; B < N; ++B)
      if (InLoop[B])
        Loop.Blocks.push_back(static_cast<uint32_t>(B));

    // Unique out-of-loop predecessor of the header = preheader.
    uint32_t Pre = ~0u;
    bool Unique = true;
    for (uint32_t P : CFG.predecessors()[Loop.Header]) {
      if (InLoop[P])
        continue;
      if (Pre != ~0u)
        Unique = false;
      Pre = P;
    }
    if (Unique && Pre != ~0u)
      Loop.Preheader = Pre;
    Loops.push_back(std::move(Loop));
  }
  return Loops;
}

//===----------------------------------------------------------------------===//
// Def/use counts
//===----------------------------------------------------------------------===//

DefUseCounts gcsafe::opt::countDefsUses(const Function &F) {
  DefUseCounts C;
  C.Defs.assign(F.NumRegs, 0);
  C.Uses.assign(F.NumRegs, 0);
  for (uint32_t P : F.ParamRegs)
    ++C.Defs[P]; // defined at entry
  for (const BasicBlock &B : F.Blocks)
    for (const Instruction &I : B.Insts) {
      if (I.Dst != NoReg)
        ++C.Defs[I.Dst];
      forEachUse(I, [&](uint32_t R) { ++C.Uses[R]; });
    }
  return C;
}

//===----------------------------------------------------------------------===//
// Liveness
//===----------------------------------------------------------------------===//

Liveness::Liveness(const Function &F, const CFGInfo &CFG) {
  size_t N = F.Blocks.size();
  LiveIn.assign(N, RegSet(F.NumRegs));
  LiveOut.assign(N, RegSet(F.NumRegs));
  MaxPressure.assign(N, 0);
  KLBases.assign(F.NumRegs, {});

  for (const BasicBlock &B : F.Blocks)
    for (const Instruction &I : B.Insts)
      if (I.Op == Opcode::KeepLive && I.Dst != NoReg && I.B.isReg() &&
          I.B.Reg != I.Dst) {
        std::vector<uint32_t> &Bases = KLBases[I.Dst];
        if (std::find(Bases.begin(), Bases.end(), I.B.Reg) == Bases.end())
          Bases.push_back(I.B.Reg);
      }

  // Iterate backward dataflow to fixpoint.
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (auto It = CFG.rpo().rbegin(); It != CFG.rpo().rend(); ++It) {
      uint32_t B = *It;
      RegSet Out(F.NumRegs);
      for (uint32_t S : CFG.successors()[B])
        Out.unionWith(LiveIn[S]);
      RegSet In = Out;
      const auto &Insts = F.Blocks[B].Insts;
      for (auto IIt = Insts.rbegin(); IIt != Insts.rend(); ++IIt) {
        const Instruction &I = *IIt;
        if (I.Dst != NoReg)
          In.clear(I.Dst);
        forEachUse(I, [&](uint32_t R) { expandUse(R, In); });
      }
      bool InChanged = LiveIn[B].unionWith(In);
      bool OutChanged = LiveOut[B].unionWith(Out);
      Changed = Changed || InChanged || OutChanged;
    }
  }

  // Pressure: walk each block backward from LiveOut counting live regs.
  for (size_t B = 0; B < N; ++B) {
    RegSet Live = LiveOut[B];
    unsigned Max = Live.count();
    const auto &Insts = F.Blocks[B].Insts;
    for (auto IIt = Insts.rbegin(); IIt != Insts.rend(); ++IIt) {
      const Instruction &I = *IIt;
      if (I.Dst != NoReg)
        Live.clear(I.Dst);
      forEachUse(I, [&](uint32_t R) { expandUse(R, Live); });
      unsigned C = Live.count();
      if (C > Max)
        Max = C;
    }
    MaxPressure[B] = Max;
  }
}

void Liveness::expandUse(uint32_t R, RegSet &S) const {
  // Follow the KEEP_LIVE base chains: wherever a KeepLive destination is
  // live, all its bases are live too. Terminates because sets only grow;
  // the common single-base case stays iterative.
  while (R != NoReg && !S.test(R)) {
    S.set(R);
    const std::vector<uint32_t> &Bases = KLBases[R];
    if (Bases.empty())
      return;
    for (size_t I = 1; I < Bases.size(); ++I)
      expandUse(Bases[I], S);
    R = Bases[0];
  }
}
