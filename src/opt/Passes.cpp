//===- opt/Passes.cpp -----------------------------------------*- C++ -*-===//

#include "opt/Passes.h"

#include "opt/CFG.h"
#include "support/Stats.h"
#include "support/Trace.h"

#include <cassert>
#include <cstring>
#include <string>
#include <unordered_map>

using namespace gcsafe;
using namespace gcsafe::opt;
using namespace gcsafe::ir;

void PassStats::accumulate(const PassStats &O) {
  Folded += O.Folded;
  CopiesPropagated += O.CopiesPropagated;
  CSEd += O.CSEd;
  DeadRemoved += O.DeadRemoved;
  Reassociated += O.Reassociated;
  StrengthReduced += O.StrengthReduced;
  Hoisted += O.Hoisted;
  Fused += O.Fused;
  PeepholeLoadFusions += O.PeepholeLoadFusions;
  PeepholeCoalesced += O.PeepholeCoalesced;
  PeepholeAddMoves += O.PeepholeAddMoves;
  KillsInserted += O.KillsInserted;
}

std::vector<std::pair<const char *, unsigned>> PassStats::entries() const {
  return {
      {"folded", Folded},
      {"copies_propagated", CopiesPropagated},
      {"csed", CSEd},
      {"dead_removed", DeadRemoved},
      {"reassociated", Reassociated},
      {"strength_reduced", StrengthReduced},
      {"hoisted", Hoisted},
      {"fused", Fused},
      {"peephole_load_fusions", PeepholeLoadFusions},
      {"peephole_coalesced", PeepholeCoalesced},
      {"peephole_add_moves", PeepholeAddMoves},
      {"kills_inserted", KillsInserted},
  };
}

unsigned PassStats::total() const {
  unsigned Sum = 0;
  for (const auto &E : entries())
    Sum += E.second;
  return Sum;
}

namespace {

bool isPure(const Instruction &I) {
  switch (I.Op) {
  case Opcode::Mov:
  case Opcode::Add: case Opcode::Sub: case Opcode::Mul:
  case Opcode::DivS: case Opcode::DivU: case Opcode::RemS: case Opcode::RemU:
  case Opcode::And: case Opcode::Or: case Opcode::Xor:
  case Opcode::Shl: case Opcode::ShrA: case Opcode::ShrL:
  case Opcode::Neg: case Opcode::Not:
  case Opcode::FAdd: case Opcode::FSub: case Opcode::FMul: case Opcode::FDiv:
  case Opcode::FNeg:
  case Opcode::CmpEq: case Opcode::CmpNe:
  case Opcode::CmpLtS: case Opcode::CmpLeS: case Opcode::CmpGtS:
  case Opcode::CmpGeS:
  case Opcode::CmpLtU: case Opcode::CmpLeU: case Opcode::CmpGtU:
  case Opcode::CmpGeU:
  case Opcode::FCmpEq: case Opcode::FCmpNe: case Opcode::FCmpLt:
  case Opcode::FCmpLe: case Opcode::FCmpGt: case Opcode::FCmpGe:
  case Opcode::SExt: case Opcode::ZExt:
  case Opcode::SIToFP: case Opcode::FPToSI:
  case Opcode::AddrLocal: case Opcode::AddrGlobal:
  case Opcode::Nop:
    return true;
  case Opcode::Load:
  case Opcode::LoadIdx:
    // No volatile semantics in the subset; a load with an unused result is
    // removable. (Not hoistable past stores, though — see LICM.)
    return true;
  case Opcode::KeepLive:
    // Removable when unused; never value-forwarded (opacity).
    return true;
  default:
    return false;
  }
}

struct DefSite {
  uint32_t Block = ~0u;
  uint32_t Index = 0;
};

/// Maps each single-def register to its defining instruction.
void computeDefSites(const Function &F, const DefUseCounts &DU,
                     std::vector<DefSite> &Sites) {
  Sites.assign(F.NumRegs, DefSite{});
  for (uint32_t B = 0; B < F.Blocks.size(); ++B)
    for (uint32_t I = 0; I < F.Blocks[B].Insts.size(); ++I) {
      const Instruction &Inst = F.Blocks[B].Insts[I];
      if (Inst.Dst != NoReg && DU.Defs[Inst.Dst] == 1)
        Sites[Inst.Dst] = {B, I};
    }
}

int64_t foldBinary(Opcode Op, int64_t A, int64_t B) {
  switch (Op) {
  case Opcode::Add: return A + B;
  case Opcode::Sub: return A - B;
  case Opcode::Mul: return A * B;
  case Opcode::DivS: return B ? A / B : 0;
  case Opcode::DivU:
    return B ? static_cast<int64_t>(static_cast<uint64_t>(A) /
                                    static_cast<uint64_t>(B))
             : 0;
  case Opcode::RemS: return B ? A % B : 0;
  case Opcode::RemU:
    return B ? static_cast<int64_t>(static_cast<uint64_t>(A) %
                                    static_cast<uint64_t>(B))
             : 0;
  case Opcode::And: return A & B;
  case Opcode::Or: return A | B;
  case Opcode::Xor: return A ^ B;
  case Opcode::Shl: return static_cast<int64_t>(static_cast<uint64_t>(A)
                                                << (B & 63));
  case Opcode::ShrA: return A >> (B & 63);
  case Opcode::ShrL:
    return static_cast<int64_t>(static_cast<uint64_t>(A) >> (B & 63));
  case Opcode::CmpEq: return A == B;
  case Opcode::CmpNe: return A != B;
  case Opcode::CmpLtS: return A < B;
  case Opcode::CmpLeS: return A <= B;
  case Opcode::CmpGtS: return A > B;
  case Opcode::CmpGeS: return A >= B;
  case Opcode::CmpLtU: return static_cast<uint64_t>(A) < static_cast<uint64_t>(B);
  case Opcode::CmpLeU: return static_cast<uint64_t>(A) <= static_cast<uint64_t>(B);
  case Opcode::CmpGtU: return static_cast<uint64_t>(A) > static_cast<uint64_t>(B);
  case Opcode::CmpGeU: return static_cast<uint64_t>(A) >= static_cast<uint64_t>(B);
  default: return 0;
  }
}

bool isFoldableBinary(Opcode Op) {
  switch (Op) {
  case Opcode::Add: case Opcode::Sub: case Opcode::Mul:
  case Opcode::DivS: case Opcode::DivU: case Opcode::RemS: case Opcode::RemU:
  case Opcode::And: case Opcode::Or: case Opcode::Xor:
  case Opcode::Shl: case Opcode::ShrA: case Opcode::ShrL:
  case Opcode::CmpEq: case Opcode::CmpNe:
  case Opcode::CmpLtS: case Opcode::CmpLeS: case Opcode::CmpGtS:
  case Opcode::CmpGeS:
  case Opcode::CmpLtU: case Opcode::CmpLeU: case Opcode::CmpGtU:
  case Opcode::CmpGeU:
    return true;
  default:
    return false;
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// simplifyFunction
//===----------------------------------------------------------------------===//

void gcsafe::opt::simplifyFunction(Function &F, PassStats &Stats) {
  for (int Round = 0; Round < 8; ++Round) {
    bool Changed = false;
    DefUseCounts DU = countDefsUses(F);

    // Value map for copy propagation: single-def Mov of imm or of a
    // single-def register.
    std::vector<Value> Subst(F.NumRegs, Value::none());
    for (const BasicBlock &B : F.Blocks)
      for (const Instruction &I : B.Insts) {
        if (I.Op != Opcode::Mov || I.Dst == NoReg || DU.Defs[I.Dst] != 1)
          continue;
        if (I.A.isImm() || I.A.isFImm())
          Subst[I.Dst] = I.A;
        else if (I.A.isReg() && DU.Defs[I.A.Reg] == 1)
          Subst[I.Dst] = I.A;
      }

    auto Rewrite = [&](Value &V) {
      while (V.isReg() && !Subst[V.Reg].isNone()) {
        V = Subst[V.Reg];
        Changed = true;
        ++Stats.CopiesPropagated;
      }
    };

    for (BasicBlock &B : F.Blocks)
      for (Instruction &I : B.Insts) {
        Rewrite(I.A);
        Rewrite(I.B);
        Rewrite(I.C);
        for (Value &V : I.Args)
          Rewrite(V);

        // Constant folding and algebraic identities. Division/remainder by
        // a constant zero is left for the runtime to trap.
        bool ZeroDivide =
            (I.Op == Opcode::DivS || I.Op == Opcode::DivU ||
             I.Op == Opcode::RemS || I.Op == Opcode::RemU) &&
            I.B.isImm() && I.B.Imm == 0;
        if (isFoldableBinary(I.Op) && I.A.isImm() && I.B.isImm() &&
            !ZeroDivide) {
          int64_t R = foldBinary(I.Op, I.A.Imm, I.B.Imm);
          I.Op = Opcode::Mov;
          I.A = Value::imm(R);
          I.B = Value::none();
          Changed = true;
          ++Stats.Folded;
        } else if ((I.Op == Opcode::Add || I.Op == Opcode::Sub ||
                    I.Op == Opcode::Shl || I.Op == Opcode::ShrA ||
                    I.Op == Opcode::ShrL || I.Op == Opcode::Or ||
                    I.Op == Opcode::Xor) &&
                   I.B.isImm() && I.B.Imm == 0) {
          I.Op = Opcode::Mov;
          I.B = Value::none();
          Changed = true;
          ++Stats.Folded;
        } else if (I.Op == Opcode::Mul && I.B.isImm() && I.B.Imm == 1) {
          I.Op = Opcode::Mov;
          I.B = Value::none();
          Changed = true;
          ++Stats.Folded;
        } else if (I.Op == Opcode::Add && I.A.isImm() && I.A.Imm == 0) {
          I.Op = Opcode::Mov;
          I.A = I.B;
          I.B = Value::none();
          Changed = true;
          ++Stats.Folded;
        } else if (I.Op == Opcode::Br && I.A.isImm()) {
          I.Op = Opcode::Jmp;
          I.Blk1 = I.A.Imm ? I.Blk1 : I.Blk2;
          I.A = Value::none();
          Changed = true;
          ++Stats.Folded;
        } else if (I.Op == Opcode::SExt && I.A.isImm()) {
          unsigned Bits = I.Size * 8;
          uint64_t Mask = Bits >= 64 ? ~uint64_t(0)
                                     : ((uint64_t(1) << Bits) - 1);
          uint64_t V = static_cast<uint64_t>(I.A.Imm) & Mask;
          if (Bits < 64 && (V >> (Bits - 1)))
            V |= ~Mask;
          I.Op = Opcode::Mov;
          I.A = Value::imm(static_cast<int64_t>(V));
          Changed = true;
          ++Stats.Folded;
        } else if (I.Op == Opcode::ZExt && I.A.isImm()) {
          unsigned Bits = I.Size * 8;
          uint64_t Mask = Bits >= 64 ? ~uint64_t(0)
                                     : ((uint64_t(1) << Bits) - 1);
          I.Op = Opcode::Mov;
          I.A = Value::imm(static_cast<int64_t>(
              static_cast<uint64_t>(I.A.Imm) & Mask));
          Changed = true;
          ++Stats.Folded;
        }
      }

    // Dead code elimination: pure instructions with unused destinations.
    DU = countDefsUses(F);
    for (BasicBlock &B : F.Blocks)
      for (Instruction &I : B.Insts) {
        if (I.Op == Opcode::Nop || I.Dst == NoReg || !isPure(I))
          continue;
        if (DU.Uses[I.Dst] == 0) {
          I = Instruction{};
          I.Op = Opcode::Nop;
          Changed = true;
          ++Stats.DeadRemoved;
        }
      }

    // Compact Nops away.
    for (BasicBlock &B : F.Blocks) {
      std::vector<Instruction> Kept;
      Kept.reserve(B.Insts.size());
      for (Instruction &I : B.Insts)
        if (I.Op != Opcode::Nop)
          Kept.push_back(std::move(I));
      B.Insts = std::move(Kept);
    }

    if (!Changed)
      break;
  }
}

//===----------------------------------------------------------------------===//
// localCSE
//===----------------------------------------------------------------------===//

void gcsafe::opt::localCSE(Function &F, PassStats &Stats) {
  for (BasicBlock &B : F.Blocks) {
    // Key -> register holding the value.
    std::unordered_map<std::string, uint32_t> Available;
    uint64_t MemEpoch = 0;

    auto ValueKey = [](const Value &V) -> std::string {
      switch (V.Kind) {
      case Value::ValueKind::None: return "_";
      case Value::ValueKind::Reg: return "r" + std::to_string(V.Reg);
      case Value::ValueKind::Imm: return "i" + std::to_string(V.Imm);
      case Value::ValueKind::FImm: {
        uint64_t Bits;
        std::memcpy(&Bits, &V.FImm, sizeof(Bits));
        return "f" + std::to_string(Bits);
      }
      }
      return "?";
    };

    auto InvalidateReg = [&](uint32_t R) {
      std::string Tag = "r" + std::to_string(R);
      for (auto It = Available.begin(); It != Available.end();) {
        bool Mentions = It->second == R ||
                        It->first.find("|" + Tag + "|") != std::string::npos ||
                        It->first.rfind("|" + Tag) ==
                            It->first.size() - Tag.size() - 1;
        It = Mentions ? Available.erase(It) : ++It;
      }
    };

    for (Instruction &I : B.Insts) {
      // Memory and side effects.
      bool WritesMemory = I.Op == Opcode::Store || I.Op == Opcode::StoreIdx ||
                          I.Op == Opcode::Call;
      if (WritesMemory)
        ++MemEpoch;
      if (I.Op == Opcode::Kill) {
        if (I.A.isReg())
          InvalidateReg(I.A.Reg);
        continue;
      }

      bool IsLoad = I.Op == Opcode::Load || I.Op == Opcode::LoadIdx;
      bool Eligible = I.Dst != NoReg && I.Op != Opcode::Mov &&
                      I.Op != Opcode::KeepLive &&
                      I.Op != Opcode::CheckSameObj &&
                      I.Op != Opcode::Call && I.Op != Opcode::AddrLocal &&
                      I.Op != Opcode::AddrGlobal && !I.isTerminator() &&
                      I.Op != Opcode::Nop;
      if (!Eligible) {
        if (I.Dst != NoReg)
          InvalidateReg(I.Dst);
        continue;
      }

      std::string Key = std::to_string(static_cast<int>(I.Op)) + "#" +
                        std::to_string(I.Size) + "#" +
                        std::to_string(I.SignedLoad) + "|" + ValueKey(I.A) +
                        "|" + ValueKey(I.B) + "|" + ValueKey(I.C);
      if (IsLoad)
        Key += "@" + std::to_string(MemEpoch);

      auto It = Available.find(Key);
      if (It != Available.end()) {
        uint32_t Prev = It->second;
        uint32_t Dst = I.Dst;
        I = Instruction{};
        I.Op = Opcode::Mov;
        I.Dst = Dst;
        I.A = Value::reg(Prev);
        InvalidateReg(Dst);
        ++Stats.CSEd;
        continue;
      }
      uint32_t Dst = I.Dst;
      InvalidateReg(Dst);
      Available.emplace(std::move(Key), Dst);
    }
  }
}

//===----------------------------------------------------------------------===//
// reassociateDisplacements — the pointer-disguising rewrite
//===----------------------------------------------------------------------===//

void gcsafe::opt::reassociateDisplacements(Function &F, PassStats &Stats) {
  DefUseCounts DU = countDefsUses(F);
  std::vector<DefSite> Sites;
  computeDefSites(F, DU, Sites);

  auto SingleDefInst = [&](uint32_t R) -> Instruction * {
    if (R >= F.NumRegs || DU.Defs[R] != 1 || Sites[R].Block == ~0u)
      return nullptr;
    return &F.Blocks[Sites[R].Block].Insts[Sites[R].Index];
  };

  for (BasicBlock &B : F.Blocks) {
    for (size_t Idx = 0; Idx < B.Insts.size(); ++Idx) {
      Instruction &I = B.Insts[Idx];
      if (I.Op != Opcode::Add || I.Dst == NoReg || !I.A.isReg() ||
          !I.B.isReg())
        continue;

      // Pattern A: t = add p, s where s = sub i, C (single def and use).
      // Rewrite to q = sub p, C; t = add q, i.
      Instruction *SDef = SingleDefInst(I.B.Reg);
      if (SDef && SDef->Op == Opcode::Sub && SDef->B.isImm() &&
          DU.Uses[I.B.Reg] == 1 && SDef->A.isReg()) {
        uint32_t Q = F.newReg();
        Instruction NewSub;
        NewSub.Op = Opcode::Sub;
        NewSub.Dst = Q;
        NewSub.A = I.A;
        NewSub.B = SDef->B;
        Value IVal = SDef->A;
        // Kill the old sub; its result is no longer used.
        *SDef = Instruction{};
        SDef->Op = Opcode::Nop;
        I.A = Value::reg(Q);
        I.B = IVal;
        B.Insts.insert(B.Insts.begin() + Idx, std::move(NewSub));
        ++Idx; // skip over the inserted sub
        ++Stats.Reassociated;
        // Recompute facts (cheap functions; patterns are rare).
        DU = countDefsUses(F);
        computeDefSites(F, DU, Sites);
        continue;
      }

      // Pattern B: t = add p, m where m = mul s, K and s = sub i, C.
      // Rewrite to q = sub p, C*K; m' = mul i, K; t = add q, m'.
      Instruction *MDef = SingleDefInst(I.B.Reg);
      if (MDef && MDef->Op == Opcode::Mul && MDef->B.isImm() &&
          MDef->A.isReg() && DU.Uses[I.B.Reg] == 1) {
        Instruction *SubDef = SingleDefInst(MDef->A.Reg);
        if (SubDef && SubDef->Op == Opcode::Sub && SubDef->B.isImm() &&
            SubDef->A.isReg() && DU.Uses[MDef->A.Reg] == 1) {
          int64_t C = SubDef->B.Imm;
          int64_t K = MDef->B.Imm;
          Value IVal = SubDef->A;
          uint32_t Q = F.newReg();
          uint32_t M2 = F.newReg();
          Instruction NewSub;
          NewSub.Op = Opcode::Sub;
          NewSub.Dst = Q;
          NewSub.A = I.A;
          NewSub.B = Value::imm(C * K);
          Instruction NewMul;
          NewMul.Op = Opcode::Mul;
          NewMul.Dst = M2;
          NewMul.A = IVal;
          NewMul.B = Value::imm(K);
          *SubDef = Instruction{};
          SubDef->Op = Opcode::Nop;
          *MDef = Instruction{};
          MDef->Op = Opcode::Nop;
          I.A = Value::reg(Q);
          I.B = Value::reg(M2);
          B.Insts.insert(B.Insts.begin() + Idx, std::move(NewMul));
          B.Insts.insert(B.Insts.begin() + Idx, std::move(NewSub));
          Idx += 2;
          ++Stats.Reassociated;
          DU = countDefsUses(F);
          computeDefSites(F, DU, Sites);
          continue;
        }
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// strengthReduceIVs
//===----------------------------------------------------------------------===//

void gcsafe::opt::strengthReduceIVs(Function &F, PassStats &Stats) {
  CFGInfo CFG(F);
  std::vector<LoopInfo> Loops = findLoops(F, CFG);
  if (Loops.empty())
    return;

  for (const LoopInfo &Loop : Loops) {
    if (Loop.Preheader == ~0u)
      continue;
    std::vector<bool> InLoop(F.Blocks.size(), false);
    for (uint32_t B : Loop.Blocks)
      InLoop[B] = true;

    DefUseCounts DU = countDefsUses(F);
    std::vector<DefSite> Sites;
    computeDefSites(F, DU, Sites);

    auto IsInvariantReg = [&](uint32_t R) {
      if (DU.Defs[R] == 0)
        return true;
      if (DU.Defs[R] != 1)
        return false;
      if (Sites[R].Block == ~0u)
        return true; // parameter (entry def, no instruction site)
      return !InLoop[Sites[R].Block];
    };
    auto IsInvariantValue = [&](const Value &V) {
      return !V.isReg() || IsInvariantReg(V.Reg);
    };

    // Basic IVs: registers with exactly one in-loop update equivalent to
    // `r = r + C` (C immediate). Unoptimized increments appear as the
    // chain `t1 = mov r; t2 = add t1, C; r = mov t2`, so the recognizer
    // follows single-def movs.
    struct BasicIV {
      uint32_t Reg;
      int64_t Step;
      uint32_t StepBlock; ///< Block/index of the instruction that writes
      size_t StepIndex;   ///< the new value into Reg.
    };

    // Resolves whether the instruction defining R is (a chain equivalent
    // to) R = R + C.
    auto MatchIVUpdate = [&](uint32_t R, const Instruction &I,
                             int64_t &StepOut) {
      auto DefOf = [&](uint32_t X) -> const Instruction * {
        if (DU.Defs[X] != 1 || Sites[X].Block == ~0u ||
            !InLoop[Sites[X].Block])
          return nullptr;
        return &F.Blocks[Sites[X].Block].Insts[Sites[X].Index];
      };
      const Instruction *Cur = &I;
      // Peel a trailing `r = mov x`.
      if (Cur->Op == Opcode::Mov && Cur->A.isReg()) {
        Cur = DefOf(Cur->A.Reg);
        if (!Cur)
          return false;
      }
      if (Cur->Op != Opcode::Add || !Cur->A.isReg() || !Cur->B.isImm())
        return false;
      uint32_t Src = Cur->A.Reg;
      if (Src != R) {
        const Instruction *SrcDef = DefOf(Src);
        if (!SrcDef || SrcDef->Op != Opcode::Mov || !SrcDef->A.isRegNo(R))
          return false;
      }
      StepOut = Cur->B.Imm;
      return true;
    };

    std::vector<BasicIV> IVs;
    for (uint32_t R = 0; R < F.NumRegs; ++R) {
      int InLoopDefs = 0;
      BasicIV IV{R, 0, 0, 0};
      bool Shape = true;
      for (uint32_t BId = 0; BId < F.Blocks.size() && Shape; ++BId) {
        const BasicBlock &B = F.Blocks[BId];
        for (size_t Idx = 0; Idx < B.Insts.size(); ++Idx) {
          const Instruction &I = B.Insts[Idx];
          if (I.Dst != R || !InLoop[BId])
            continue;
          ++InLoopDefs;
          int64_t Step = 0;
          if (InLoopDefs > 1 || !MatchIVUpdate(R, I, Step)) {
            Shape = false;
            break;
          }
          IV.Step = Step;
          IV.StepBlock = BId;
          IV.StepIndex = Idx;
        }
      }
      if (Shape && InLoopDefs == 1)
        IVs.push_back(IV);
    }
    if (IVs.empty())
      continue;

    auto FindIV = [&](uint32_t R) -> const BasicIV * {
      for (const BasicIV &IV : IVs)
        if (IV.Reg == R)
          return &IV;
      return nullptr;
    };

    // One derived candidate per loop per invocation: a = Add p, m with
    // m = Mul i, K (single def/use, in-loop), i a basic IV, p invariant.
    struct Candidate {
      uint32_t AddBlock = 0;
      size_t AddIndex = 0;
      Value P;
      const BasicIV *IV = nullptr;
      int64_t K = 0;
    };
    Candidate Cand;
    bool Found = false;
    for (uint32_t BId : Loop.Blocks) {
      BasicBlock &B = F.Blocks[BId];
      for (size_t Idx = 0; Idx < B.Insts.size() && !Found; ++Idx) {
        Instruction &I = B.Insts[Idx];
        if (I.Op != Opcode::Add || I.Dst == NoReg || !I.A.isReg() ||
            !I.B.isReg())
          continue;
        if (!IsInvariantValue(I.A))
          continue;
        uint32_t M = I.B.Reg;
        if (DU.Defs[M] != 1 || DU.Uses[M] != 1 || Sites[M].Block == ~0u ||
            !InLoop[Sites[M].Block])
          continue;
        const Instruction &MulI =
            F.Blocks[Sites[M].Block].Insts[Sites[M].Index];
        if (MulI.Op != Opcode::Mul || !MulI.A.isReg() || !MulI.B.isImm())
          continue;
        const BasicIV *IV = FindIV(MulI.A.Reg);
        if (!IV)
          continue;
        Cand.AddBlock = BId;
        Cand.AddIndex = Idx;
        Cand.P = I.A;
        Cand.IV = IV;
        Cand.K = MulI.B.Imm;
        Found = true;
      }
      if (Found)
        break;
    }
    if (!Found)
      continue;

    // Rewrite:
    //   preheader:   t = Mul i, K ; iv = Add p, t
    //   after i+=C:  iv = Add iv, C*K
    //   a = Add p, m  ==>  a = Mov iv        (the Mul dies via DCE)
    uint32_t T = F.newReg();
    uint32_t IVReg = F.newReg();
    {
      BasicBlock &Pre = F.Blocks[Loop.Preheader];
      auto Insert =
          Pre.Insts.empty() ? Pre.Insts.end() : Pre.Insts.end() - 1;
      Instruction AddInit;
      AddInit.Op = Opcode::Add;
      AddInit.Dst = IVReg;
      AddInit.A = Cand.P;
      AddInit.B = Value::reg(T);
      Insert = Pre.Insts.insert(Insert, AddInit);
      Instruction MulInit;
      MulInit.Op = Opcode::Mul;
      MulInit.Dst = T;
      MulInit.A = Value::reg(Cand.IV->Reg);
      MulInit.B = Value::imm(Cand.K);
      Pre.Insts.insert(Insert, MulInit);
    }
    {
      Instruction &AddI = F.Blocks[Cand.AddBlock].Insts[Cand.AddIndex];
      uint32_t Dst = AddI.Dst;
      AddI = Instruction{};
      AddI.Op = Opcode::Mov;
      AddI.Dst = Dst;
      AddI.A = Value::reg(IVReg);
    }
    {
      BasicBlock &StepB = F.Blocks[Cand.IV->StepBlock];
      Instruction Advance;
      Advance.Op = Opcode::Add;
      Advance.Dst = IVReg;
      Advance.A = Value::reg(IVReg);
      Advance.B = Value::imm(Cand.IV->Step * Cand.K);
      StepB.Insts.insert(StepB.Insts.begin() + Cand.IV->StepIndex + 1,
                         Advance);
    }
    ++Stats.StrengthReduced;
  }
}

//===----------------------------------------------------------------------===//
// hoistLoopInvariants
//===----------------------------------------------------------------------===//

void gcsafe::opt::hoistLoopInvariants(Function &F, PassStats &Stats) {
  CFGInfo CFG(F);
  std::vector<LoopInfo> Loops = findLoops(F, CFG);
  if (Loops.empty())
    return;
  DefUseCounts DU = countDefsUses(F);
  std::vector<DefSite> Sites;
  computeDefSites(F, DU, Sites);

  for (const LoopInfo &Loop : Loops) {
    if (Loop.Preheader == ~0u)
      continue;
    std::vector<bool> InLoop(F.Blocks.size(), false);
    for (uint32_t B : Loop.Blocks)
      InLoop[B] = true;

    // A register is invariant if its single def lies outside the loop, or
    // it has been hoisted.
    std::vector<bool> Invariant(F.NumRegs, false);
    auto IsInvariantValue = [&](const Value &V) {
      if (!V.isReg())
        return true;
      uint32_t R = V.Reg;
      if (Invariant[R])
        return true;
      if (DU.Defs[R] == 0)
        return true; // parameter
      if (DU.Defs[R] != 1)
        return false;
      if (Sites[R].Block == ~0u)
        return true; // parameter with counted entry def
      return !InLoop[Sites[R].Block];
    };

    BasicBlock &Pre = F.Blocks[Loop.Preheader];
    // Insert hoisted code before the preheader's terminator.
    auto InsertPos = [&]() {
      return Pre.Insts.empty() ? Pre.Insts.end() : Pre.Insts.end() - 1;
    };

    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (uint32_t BId : Loop.Blocks) {
        BasicBlock &B = F.Blocks[BId];
        for (Instruction &I : B.Insts) {
          if (I.Dst == NoReg || !isPure(I) || I.Op == Opcode::Nop ||
              I.Op == Opcode::KeepLive || I.Op == Opcode::Load ||
              I.Op == Opcode::LoadIdx)
            continue; // loads may observe in-loop stores: do not hoist
          if (DU.Defs[I.Dst] != 1)
            continue;
          if (!IsInvariantValue(I.A) || !IsInvariantValue(I.B) ||
              !IsInvariantValue(I.C))
            continue;
          Pre.Insts.insert(InsertPos(), I);
          Invariant[I.Dst] = true;
          I = Instruction{};
          I.Op = Opcode::Nop;
          Changed = true;
          ++Stats.Hoisted;
        }
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// fuseAddressing
//===----------------------------------------------------------------------===//

void gcsafe::opt::fuseAddressing(Function &F, PassStats &Stats) {
  DefUseCounts DU = countDefsUses(F);

  for (BasicBlock &B : F.Blocks) {
    // Map register -> index of its defining Add in this block.
    std::unordered_map<uint32_t, size_t> AddDef;
    for (size_t Idx = 0; Idx < B.Insts.size(); ++Idx) {
      Instruction &I = B.Insts[Idx];

      auto TryFuse = [&](Value &AddrOperand, bool IsStore) -> bool {
        if (!AddrOperand.isReg())
          return false;
        auto It = AddDef.find(AddrOperand.Reg);
        if (It == AddDef.end())
          return false;
        Instruction &Def = B.Insts[It->second];
        if (Def.Op != Opcode::Add)
          return false;
        uint32_t R = AddrOperand.Reg;
        if (DU.Defs[R] != 1 || DU.Uses[R] != 1)
          return false;
        // Operands of the add must not be redefined between def and here.
        for (size_t J = It->second + 1; J < Idx; ++J) {
          const Instruction &Between = B.Insts[J];
          if (Between.Dst == NoReg)
            continue;
          if (Def.A.isRegNo(Between.Dst) || Def.B.isRegNo(Between.Dst))
            return false;
        }
        if (IsStore) {
          I.Op = Opcode::StoreIdx;
          I.C = I.B;
        } else {
          I.Op = Opcode::LoadIdx;
        }
        I.A = Def.A;
        I.B = Def.B;
        Def = Instruction{};
        Def.Op = Opcode::Nop;
        ++Stats.Fused;
        return true;
      };

      if (I.Op == Opcode::Load) {
        TryFuse(I.A, /*IsStore=*/false);
      } else if (I.Op == Opcode::Store) {
        Value Addr = I.A;
        if (TryFuse(Addr, /*IsStore=*/true)) {
          // TryFuse already rewrote operands from Def; nothing else to do.
        }
      }

      Instruction &Cur = B.Insts[Idx];
      if (Cur.Op == Opcode::Add && Cur.Dst != NoReg)
        AddDef[Cur.Dst] = Idx;
      else if (Cur.Dst != NoReg)
        AddDef.erase(Cur.Dst);
    }
  }
}

//===----------------------------------------------------------------------===//
// peepholePostprocess
//===----------------------------------------------------------------------===//

namespace {
void runPeephole(Function &F, PassStats &Stats, bool IncludeKLFusion) {
  DefUseCounts DU = countDefsUses(F);

  // Registers used as a KEEP_LIVE base must keep their own identity
  // (pattern 2's stated constraint).
  std::vector<bool> IsKLBase(F.NumRegs, false);
  for (const BasicBlock &B : F.Blocks)
    for (const Instruction &I : B.Insts)
      if (I.Op == Opcode::KeepLive && I.B.isReg())
        IsKLBase[I.B.Reg] = true;

  for (BasicBlock &B : F.Blocks) {
    // Pattern 1: add x,y,z ; keep_live w = z, b ; ld [w] — with b one of
    // x/y — becomes ld [x+y].
    std::unordered_map<uint32_t, size_t> DefIdx;
    for (size_t Idx = 0; Idx < B.Insts.size(); ++Idx) {
      Instruction &I = B.Insts[Idx];

      auto OperandsStable = [&](size_t From, size_t To, const Value &X,
                                const Value &Y) {
        for (size_t J = From + 1; J < To; ++J) {
          uint32_t D = B.Insts[J].Dst;
          if (D == NoReg)
            continue;
          if (X.isRegNo(D) || Y.isRegNo(D))
            return false;
        }
        return true;
      };

      auto TryPattern1 = [&](Value &AddrOperand, bool IsStore) {
        if (!AddrOperand.isReg())
          return;
        uint32_t W = AddrOperand.Reg;
        auto KLIt = DefIdx.find(W);
        if (KLIt == DefIdx.end())
          return;
        Instruction &KL = B.Insts[KLIt->second];
        if (KL.Op != Opcode::KeepLive || DU.Uses[W] != 1 || !KL.A.isReg())
          return;
        uint32_t Z = KL.A.Reg;
        auto AddIt = DefIdx.find(Z);
        if (AddIt == DefIdx.end())
          return;
        Instruction &AddI = B.Insts[AddIt->second];
        if (AddI.Op != Opcode::Add || DU.Uses[Z] != 1 || DU.Defs[Z] != 1 ||
            DU.Defs[W] != 1)
          return;
        // The KEEP_LIVE base must be one of the add operands, so it stays
        // live through the fused load.
        if (!KL.B.isReg() ||
            !(AddI.A == KL.B || AddI.B == KL.B))
          return;
        if (!OperandsStable(AddIt->second, Idx, AddI.A, AddI.B))
          return;
        if (IsStore) {
          I.Op = Opcode::StoreIdx;
          I.C = I.B;
        } else {
          I.Op = Opcode::LoadIdx;
        }
        I.A = AddI.A;
        I.B = AddI.B;
        AddI = Instruction{};
        AddI.Op = Opcode::Nop;
        KL = Instruction{};
        KL.Op = Opcode::Nop;
        ++Stats.PeepholeLoadFusions;
        DU = countDefsUses(F);
      };

      if (IncludeKLFusion) {
        if (I.Op == Opcode::Load)
          TryPattern1(I.A, false);
        else if (I.Op == Opcode::Store)
          TryPattern1(I.A, true);
      }

      // Pattern 3: add x,y,z ; mov w = z (z single-use) => add x,y,w.
      if (I.Op == Opcode::Mov && I.A.isReg() && I.Dst != NoReg) {
        uint32_t Z = I.A.Reg;
        auto AddIt = DefIdx.find(Z);
        if (AddIt != DefIdx.end()) {
          Instruction &AddI = B.Insts[AddIt->second];
          if (AddI.Op == Opcode::Add && DU.Uses[Z] == 1 &&
              DU.Defs[Z] == 1 && DU.Defs[I.Dst] == 1 && !IsKLBase[Z] &&
              OperandsStable(AddIt->second, Idx, AddI.A, AddI.B)) {
            AddI.Dst = I.Dst;
            I = Instruction{};
            I.Op = Opcode::Nop;
            ++Stats.PeepholeAddMoves;
            DU = countDefsUses(F);
            // Update the def index for the moved destination.
            DefIdx[AddI.Dst] = AddIt->second;
          }
        }
      }

      Instruction &Cur = B.Insts[Idx];
      if (Cur.Dst != NoReg)
        DefIdx[Cur.Dst] = Idx;
    }

    // Pattern 2: mov z = x; replace in-block uses of z by x (not if z is a
    // KEEP_LIVE base, and only while x is not redefined).
    for (size_t Idx = 0; Idx < B.Insts.size(); ++Idx) {
      Instruction &MovI = B.Insts[Idx];
      if (MovI.Op != Opcode::Mov || MovI.Dst == NoReg || !MovI.A.isReg())
        continue;
      uint32_t Z = MovI.Dst;
      uint32_t X = MovI.A.Reg;
      if (Z == X || IsKLBase[Z] || DU.Defs[Z] != 1)
        continue;
      // Count uses of z reachable within the block before x or z changes.
      size_t End = B.Insts.size();
      unsigned Replaceable = 0;
      for (size_t J = Idx + 1; J < End; ++J) {
        const Instruction &I = B.Insts[J];
        unsigned Here = 0;
        forEachUse(I, [&](uint32_t R) {
          if (R == Z)
            ++Here;
        });
        Replaceable += Here;
        if (I.Dst == X || I.Dst == Z) {
          End = J + 1;
          break;
        }
      }
      if (Replaceable != DU.Uses[Z] || Replaceable == 0)
        continue;
      for (size_t J = Idx + 1; J < End; ++J) {
        Instruction &I = B.Insts[J];
        auto Replace = [&](Value &V) {
          if (V.isRegNo(Z))
            V = Value::reg(X);
        };
        Replace(I.A);
        Replace(I.B);
        Replace(I.C);
        for (Value &V : I.Args)
          Replace(V);
      }
      MovI = Instruction{};
      MovI.Op = Opcode::Nop;
      ++Stats.PeepholeCoalesced;
      DU = countDefsUses(F);
    }
  }
}

} // namespace

void gcsafe::opt::peepholePostprocess(Function &F, PassStats &Stats) {
  runPeephole(F, Stats, /*IncludeKLFusion=*/true);
}

void gcsafe::opt::coalesceCopies(Function &F, PassStats &Stats) {
  runPeephole(F, Stats, /*IncludeKLFusion=*/false);
}

//===----------------------------------------------------------------------===//
// insertKills
//===----------------------------------------------------------------------===//

void gcsafe::opt::insertKills(Function &F, PassStats &Stats) {
  CFGInfo CFG(F);
  Liveness LV(F, CFG);

  for (uint32_t BId = 0; BId < F.Blocks.size(); ++BId) {
    BasicBlock &B = F.Blocks[BId];
    size_t N = B.Insts.size();
    std::vector<std::vector<uint32_t>> DiesAt(N);

    RegSet Live = LV.liveOut(BId);
    for (size_t RI = N; RI-- > 0;) {
      const Instruction &I = B.Insts[RI];
      if (I.Dst != NoReg) {
        if (!Live.test(I.Dst) && !I.isTerminator())
          DiesAt[RI].push_back(I.Dst); // dead on arrival
        Live.clear(I.Dst);
      }
      RegSet Closure(F.NumRegs);
      forEachUse(I, [&](uint32_t R) { LV.expandUse(R, Closure); });
      // Any register in the closure not yet live dies here (this is its
      // last use going forward).
      forEachUse(I, [&](uint32_t R) { (void)R; });
      for (uint32_t R = 0; R < F.NumRegs; ++R) {
        if (!Closure.test(R))
          continue;
        // A register that is both read (directly or as a KEEP_LIVE base)
        // and written by this instruction must not be killed after it:
        // the kill would refer to the freshly written value.
        if (!Live.test(R) && !I.isTerminator() && R != I.Dst)
          DiesAt[RI].push_back(R);
        Live.set(R);
      }
    }

    // Entry block: parameters never used die immediately.
    std::vector<uint32_t> EntryKills;
    if (BId == 0)
      for (uint32_t P : F.ParamRegs)
        if (!LV.liveIn(0).test(P) && !Live.test(P))
          EntryKills.push_back(P);

    std::vector<Instruction> NewInsts;
    NewInsts.reserve(N + 8);
    for (uint32_t R : EntryKills) {
      Instruction K;
      K.Op = Opcode::Kill;
      K.A = Value::reg(R);
      NewInsts.push_back(std::move(K));
      ++Stats.KillsInserted;
    }
    for (size_t Idx = 0; Idx < N; ++Idx) {
      NewInsts.push_back(std::move(B.Insts[Idx]));
      for (uint32_t R : DiesAt[Idx]) {
        Instruction K;
        K.Op = Opcode::Kill;
        K.A = Value::reg(R);
        NewInsts.push_back(std::move(K));
        ++Stats.KillsInserted;
      }
    }
    B.Insts = std::move(NewInsts);
  }
}

//===----------------------------------------------------------------------===//
// removeUnreachableBlocks / pipeline
//===----------------------------------------------------------------------===//

void gcsafe::opt::removeUnreachableBlocks(Function &F) {
  CFGInfo CFG(F);
  for (uint32_t B = 0; B < F.Blocks.size(); ++B)
    if (!CFG.isReachable(B))
      F.Blocks[B].Insts.clear();
}

PassStats gcsafe::opt::optimizeModule(Module &M,
                                      const OptPipelineOptions &Options) {
  PassStats Total;
  support::Stats *Reg = Options.Stats;
  uint64_t PipelineStartNs = Reg ? support::monotonicNowNs() : 0;

  const bool Transactional = static_cast<bool>(Options.CommitGate);
  for (Function &F : M.Functions) {
    PassStats S;

    // Records one committed pass invocation: counter deltas into the
    // function-local stats and — when a registry is attached — under
    // "opt.<name>.*", with a trace event per changing invocation.
    auto Commit = [&](const char *Name, const PassStats &Delta,
                      uint64_t ElapsedNs) {
      S.accumulate(Delta);
      if (Reg) {
        std::string Prefix = std::string("opt.") + Name + ".";
        Reg->add(Prefix + "runs");
        Reg->add(Prefix + "ns", ElapsedNs);
        for (const auto &E : Delta.entries())
          if (E.second)
            Reg->add(Prefix + E.first, E.second);
      }
      if (Options.Trace && Delta.total())
        Options.Trace->emit("pass", Name, ElapsedNs, Delta.total(), F.Name);
    };

    // Runs one named pass over F: the test mutator, then — in
    // transactional mode — the commit gate, which either keeps the result
    // or rolls the function back to its pre-pass snapshot and quarantines
    // the pass. PassCheck always sees the committed state, so a safety
    // verifier can attribute any violation to the pass that just ran (or
    // to the mutator emulating a bug in it).
    auto RunChecked = [&](const char *Name, void (*Pass)(Function &,
                                                         PassStats &)) {
      if (Transactional && Options.Quarantine &&
          Options.Quarantine->count(Name)) {
        if (Reg)
          Reg->add("robust.quarantine_skips");
        return;
      }
      Function Snapshot;
      if (Transactional)
        Snapshot = F;
      PassStats Delta;
      bool Timed = Reg || Options.Trace || Transactional;
      uint64_t StartNs = Timed ? support::monotonicNowNs() : 0;
      Pass(F, Delta);
      uint64_t ElapsedNs = Timed ? support::monotonicNowNs() - StartNs : 0;
      if (Options.PassMutator)
        Options.PassMutator(Name, F);
      bool Committed = true;
      if (Transactional) {
        std::string Reason;
        if (Options.PassDeadlineNs && ElapsedNs > Options.PassDeadlineNs)
          Reason = "deadline";
        else if (!Options.CommitGate(Name, F, Reason) && Reason.empty())
          Reason = "verify_failed";
        if (!Reason.empty()) {
          Committed = false;
          F = std::move(Snapshot);
          if (Options.Quarantine)
            Options.Quarantine->insert(Name);
          if (Options.Rollbacks)
            Options.Rollbacks->push_back({Name, F.Name, Reason, ElapsedNs});
          if (Reg) {
            Reg->add("robust.rollbacks");
            Reg->add(std::string("robust.rollback.") + Name);
          }
          if (Options.Trace)
            Options.Trace->emit("robust", "pass.rollback", ElapsedNs, 0,
                                std::string(Name) + " in " + F.Name + ": " +
                                    Reason);
        }
      }
      if (Committed)
        Commit(Name, Delta, ElapsedNs);
      if (Options.PassCheck)
        Options.PassCheck(Name, F);
    };

    removeUnreachableBlocks(F);
    if (Options.PassCheck)
      Options.PassCheck("(entry)", F);
    if (Options.Level == OptLevel::O2) {
      RunChecked("simplify", simplifyFunction);
      RunChecked("local_cse", localCSE);
      RunChecked("simplify", simplifyFunction);
      RunChecked("reassociate", reassociateDisplacements);
      RunChecked("strength_reduce", strengthReduceIVs);
      RunChecked("simplify", simplifyFunction);
      RunChecked("licm", hoistLoopInvariants);
      RunChecked("simplify", simplifyFunction);
      RunChecked("fuse_addressing", fuseAddressing);
      // A production optimizer coalesces copies anyway; patterns 2 and 3
      // run in every optimized build so the baseline is honest.
      RunChecked("coalesce_copies", coalesceCopies);
      RunChecked("simplify", simplifyFunction);
      if (Options.Postprocess) {
        RunChecked("postprocess", peepholePostprocess);
        RunChecked("simplify", simplifyFunction);
      }
    } else if (Options.Level == OptLevel::Peephole) {
      // The degradation ladder's middle rung: only the KEEP_LIVE-safe
      // copy coalescing and cleanup, no disguising transformations.
      RunChecked("coalesce_copies", coalesceCopies);
      RunChecked("simplify", simplifyFunction);
    }
    RunChecked("insert_kills", insertKills);
    Total.accumulate(S);
  }

  if (Reg) {
    Reg->add("opt.total.ns", support::monotonicNowNs() - PipelineStartNs);
    Reg->add("opt.total.functions", M.Functions.size());
    for (const auto &E : Total.entries())
      Reg->add(std::string("opt.total.") + E.first, E.second);
  }
  return Total;
}

const std::string &gcsafe::opt::passRosterString() {
  // Must list every distinct pass the pipeline above can run, in O2
  // order (Peephole is a subset; insert_kills always runs last). Keep in
  // lockstep with the RunChecked sequence: changing one without the
  // other either misses a needed invalidation or forces a spurious one.
  static const std::string Roster = "simplify,local_cse,reassociate,"
                                    "strength_reduce,licm,fuse_addressing,"
                                    "coalesce_copies,postprocess,"
                                    "insert_kills";
  return Roster;
}
