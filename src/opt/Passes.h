//===- opt/Passes.h - Optimizer passes -------------------------*- C++ -*-===//
//
// Part of the gcsafe project, a reproduction of Boehm, "Simple
// Garbage-Collector-Safety" (PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The optimizer. Two groups of passes matter to the paper:
///
/// *Pointer-disguising optimizations* — the transformations the paper
/// defends against:
///   - reassociateDisplacements rewrites `t = p + (i - C)` into
///     `q = p - C; t = q + i` (the paper's opening example: "a conventional
///     C compiler may replace a final reference p[i-1000] ... by the
///     sequence p = p - 1000; ... p[i] ...");
///   - hoistLoopInvariants then moves `q = p - C` out of the loop, after
///     which no register holds a pointer into the object during the loop
///     body unless a KeepLive pins one.
///
/// *The peephole postprocessor* — the paper's "A Postprocessor" section:
/// three patterns, applied under a "simple global, intraprocedural
/// analysis that allows us to identify possible uses of register values",
/// that recover most of the KEEP_LIVE overhead:
///   1. add x,y,z; ld [z]    ==>  ld [x+y]      (z has no other uses; safe
///      through a KeepLive whose base is x or y, since x and y remain live
///      through the load)
///   2. mov x,z; ...z...     ==>  ...x...       (not if z is a KEEP_LIVE
///      base)
///   3. add x,y,z; mov z,w   ==>  add x,y,w
///
/// insertKills zeroes registers at the end of their (KEEP_LIVE-extended)
/// live ranges so the VM's conservative root scan sees exactly the values
/// a real register allocator would keep.
///
//===----------------------------------------------------------------------===//

#ifndef GCSAFE_OPT_PASSES_H
#define GCSAFE_OPT_PASSES_H

#include "ir/IR.h"

#include <functional>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace gcsafe {
namespace support {
class Stats;
class TraceBuffer;
} // namespace support

namespace opt {

struct PassStats {
  unsigned Folded = 0;
  unsigned CopiesPropagated = 0;
  unsigned CSEd = 0;
  unsigned DeadRemoved = 0;
  unsigned Reassociated = 0;
  unsigned StrengthReduced = 0;
  unsigned Hoisted = 0;
  unsigned Fused = 0;
  unsigned PeepholeLoadFusions = 0; ///< Pattern 1.
  unsigned PeepholeCoalesced = 0;   ///< Pattern 2.
  unsigned PeepholeAddMoves = 0;    ///< Pattern 3.
  unsigned KillsInserted = 0;

  void accumulate(const PassStats &Other);

  /// The counters as (snake_case name, value) pairs, in declaration order —
  /// the map shape every stats report serializes from. Counter names are
  /// stable; docs/OBSERVABILITY.md documents each one.
  std::vector<std::pair<const char *, unsigned>> entries() const;

  /// Sum of all counters (used to detect "this pass did something").
  unsigned total() const;
};

/// Constant folding, algebraic simplification, copy propagation and dead
/// code elimination, iterated to a fixpoint. Respects KeepLive opacity: the
/// value of a KeepLive is never forwarded or re-derived.
void simplifyFunction(ir::Function &F, PassStats &Stats);

/// The disguising reassociation (see file comment).
void reassociateDisplacements(ir::Function &F, PassStats &Stats);

/// Block-local common subexpression elimination. Pure computations with
/// identical operands reuse the earlier result; loads participate until a
/// store or call changes memory. KeepLive results are never CSE'd — the
/// paper's opacity requirement ("it causes the compiler to lose all
/// information about how the resulting value was computed").
void localCSE(ir::Function &F, PassStats &Stats);

/// Induction-variable strength reduction — the paper's second named
/// disguiser ("Similar problems may occur as a result of induction
/// variable optimizations"). For a basic IV `i += C` and an in-loop
/// address `a = p + i*K` (p loop-invariant), introduces a derived IV
/// `iv = p + i*K` advanced by C*K alongside i, after which the loop body
/// no longer computes from p at all — p can die while the object is still
/// being walked.
void strengthReduceIVs(ir::Function &F, PassStats &Stats);

/// Loop-invariant code motion into preheaders.
void hoistLoopInvariants(ir::Function &F, PassStats &Stats);

/// Folds single-use address adds into fused load/store addressing modes
/// (the "free addition in the load instruction"). Blocked by KeepLive.
void fuseAddressing(ir::Function &F, PassStats &Stats);

/// The paper's three peephole patterns (see file comment).
void peepholePostprocess(ir::Function &F, PassStats &Stats);

/// Patterns 2 and 3 only (copy coalescing / add-move folding). These do
/// not involve KEEP_LIVE and a production compiler performs them anyway,
/// so every optimized pipeline runs them — the postprocessor's
/// contribution is pattern 1's fusion through KEEP_LIVE.
void coalesceCopies(ir::Function &F, PassStats &Stats);

/// Inserts Kill pseudo-instructions at register death points.
void insertKills(ir::Function &F, PassStats &Stats);

/// Clears the bodies of unreachable blocks.
void removeUnreachableBlocks(ir::Function &F);

enum class OptLevel : uint8_t {
  O0,       ///< Debuggable: no optimization (kills still inserted).
  Peephole, ///< Copy coalescing + simplification only — the degradation
            ///< ladder's "peephole-only" rung (docs/ROBUSTNESS.md §5).
  O2,       ///< Full pipeline.
};

/// One transactional rollback: a pass whose result the commit gate vetoed
/// (or that blew its deadline) and was undone. Reason values are stable:
/// "deadline", "verify_timeout", "ir_verify_failed", or
/// "verify_failed:<diag kind>".
struct PassRollback {
  std::string Pass;
  std::string Function;
  std::string Reason;
  uint64_t ElapsedNs = 0;
};

struct OptPipelineOptions {
  OptLevel Level = OptLevel::O2;
  /// Run the peephole postprocessor (paper's "A Postprocessor").
  bool Postprocess = false;
  /// When set, optimizeModule records per-pass counters, run counts and
  /// wall time under "opt.<pass>.*" plus pipeline totals under
  /// "opt.total.*" (see docs/OBSERVABILITY.md).
  support::Stats *Stats = nullptr;
  /// When set, every pass invocation that changed the module emits a
  /// cat="pass" trace event (Value = ns, Aux = counter delta).
  support::TraceBuffer *Trace = nullptr;
  /// Test hook: invoked after each pass runs on a function, before
  /// PassCheck, with the pass name. Lets the safety-verifier self-test
  /// emulate a buggy optimizer by mutating the IR mid-pipeline.
  std::function<void(const char *Pass, ir::Function &F)> PassMutator;
  /// When set, invoked after every pass on every function (and once with
  /// pass name "(entry)" before the first pass) so a checker can verify
  /// invariants pass-by-pass and attribute violations to the offending
  /// pass.
  std::function<void(const char *Pass, const ir::Function &F)> PassCheck;

  // Transactional execution (docs/ROBUSTNESS.md §5). When CommitGate is
  // set, every pass runs against a snapshot of the function: after the
  // pass (and PassMutator) the gate either commits (true) or vetoes
  // (false, filling Reason). A vetoed — or deadline-exceeded — pass is
  // rolled back to the snapshot and quarantined for the rest of the
  // pipeline; its counters and trace events are discarded with it.
  std::function<bool(const char *Pass, const ir::Function &F,
                     std::string &Reason)>
      CommitGate;
  /// In/out set of quarantined pass names, shared across the module's
  /// functions (and, via driver::SelfHeal, across ladder attempts).
  /// Required when CommitGate is set; quarantined passes are skipped.
  std::set<std::string> *Quarantine = nullptr;
  /// Per-pass wall-clock budget in nanoseconds (0 = none). A pass
  /// exceeding it is treated as a stuck/failed transaction: rolled back
  /// and quarantined with Reason "deadline". Only honored with CommitGate.
  uint64_t PassDeadlineNs = 0;
  /// When set, one record is appended per rollback.
  std::vector<PassRollback> *Rollbacks = nullptr;
};

/// Runs the configured pipeline over every function.
PassStats optimizeModule(ir::Module &M, const OptPipelineOptions &Options);

/// The full optimizer pass roster in O2 pipeline order, comma-joined
/// ("simplify,local_cse,..."). This is the build's behavioral identity
/// for caching purposes: any change to the pass set or its order changes
/// this string, which changes driver::keyFingerprint, which invalidates
/// every cache key computed by older binaries — in memory and on disk.
const std::string &passRosterString();

} // namespace opt
} // namespace gcsafe

#endif // GCSAFE_OPT_PASSES_H
