//===- opt/CFG.h - CFG analyses for the optimizer --------------*- C++ -*-===//
//
// Part of the gcsafe project, a reproduction of Boehm, "Simple
// Garbage-Collector-Safety" (PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Control-flow analyses over ir::Function: successors/predecessors,
/// reverse post-order, dominators, natural loops, def/use counting, and a
/// KEEP_LIVE-aware liveness analysis.
///
/// The liveness analysis implements the paper's KEEP_LIVE condition (2):
/// the base operand of a KeepLive "must be visible to the collector at all
/// points between the evaluation of the original KEEP_LIVE and the final
/// use" of its result. We realize this by treating every use of a KeepLive
/// destination as also a use of its base register (transitively through
/// chained KeepLives).
///
//===----------------------------------------------------------------------===//

#ifndef GCSAFE_OPT_CFG_H
#define GCSAFE_OPT_CFG_H

#include "ir/IR.h"

#include <cstdint>
#include <vector>

namespace gcsafe {
namespace opt {

/// Successor block ids of a terminator.
void blockSuccessors(const ir::BasicBlock &B, std::vector<uint32_t> &Out);

/// Dense bitset over virtual registers.
class RegSet {
public:
  explicit RegSet(uint32_t NumRegs = 0) : Words((NumRegs + 63) / 64, 0) {}

  bool test(uint32_t R) const {
    return (Words[R / 64] >> (R % 64)) & 1;
  }
  void set(uint32_t R) { Words[R / 64] |= uint64_t(1) << (R % 64); }
  void clear(uint32_t R) { Words[R / 64] &= ~(uint64_t(1) << (R % 64)); }

  /// this |= RHS; returns true if anything changed.
  bool unionWith(const RegSet &RHS) {
    bool Changed = false;
    for (size_t I = 0; I < Words.size(); ++I) {
      uint64_t Old = Words[I];
      Words[I] |= RHS.Words[I];
      Changed = Changed || Words[I] != Old;
    }
    return Changed;
  }

  unsigned count() const;

private:
  std::vector<uint64_t> Words;
};

/// Per-function CFG information.
class CFGInfo {
public:
  explicit CFGInfo(const ir::Function &F);

  const std::vector<std::vector<uint32_t>> &successors() const {
    return Succs;
  }
  const std::vector<std::vector<uint32_t>> &predecessors() const {
    return Preds;
  }
  /// Reverse post-order over reachable blocks.
  const std::vector<uint32_t> &rpo() const { return RPO; }
  bool isReachable(uint32_t B) const { return Reachable[B]; }

  /// Immediate dominator of each block (header of idom tree); entry's idom
  /// is itself; unreachable blocks map to ~0u.
  const std::vector<uint32_t> &idom() const { return IDom; }
  bool dominates(uint32_t A, uint32_t B) const;

private:
  void computeDominators();

  const ir::Function &F;
  std::vector<std::vector<uint32_t>> Succs, Preds;
  std::vector<uint32_t> RPO;
  std::vector<uint32_t> RPOIndex;
  std::vector<bool> Reachable;
  std::vector<uint32_t> IDom;
};

/// A natural loop.
struct LoopInfo {
  uint32_t Header = 0;
  uint32_t Preheader = ~0u; ///< Unique out-of-loop predecessor, or ~0u.
  std::vector<uint32_t> Blocks; ///< Includes the header.

  bool contains(uint32_t B) const {
    for (uint32_t LB : Blocks)
      if (LB == B)
        return true;
    return false;
  }
};

/// Finds natural loops (one per back edge; loops sharing a header are
/// merged).
std::vector<LoopInfo> findLoops(const ir::Function &F, const CFGInfo &CFG);

/// Def and use counts per virtual register.
struct DefUseCounts {
  std::vector<uint32_t> Defs;
  std::vector<uint32_t> Uses;
};
DefUseCounts countDefsUses(const ir::Function &F);

/// Calls \p Fn for every register the instruction reads.
template <typename Callable>
void forEachUse(const ir::Instruction &I, Callable Fn) {
  if (I.Op == ir::Opcode::Kill)
    return; // kills are lifetime markers, not uses
  for (const ir::Value *V : {&I.A, &I.B, &I.C})
    if (V->isReg())
      Fn(V->Reg);
  for (const ir::Value &V : I.Args)
    if (V.isReg())
      Fn(V.Reg);
}

/// Per-function liveness with the KEEP_LIVE base extension.
class Liveness {
public:
  Liveness(const ir::Function &F, const CFGInfo &CFG);

  const RegSet &liveIn(uint32_t B) const { return LiveIn[B]; }
  const RegSet &liveOut(uint32_t B) const { return LiveOut[B]; }

  /// Adds \p R and any KEEP_LIVE bases it transitively pins to \p S.
  void expandUse(uint32_t R, RegSet &S) const;

  /// The KEEP_LIVE bases pinned by register \p R (empty if R is not a
  /// KeepLive destination). Exposed for the static safety verifier.
  const std::vector<uint32_t> &keepLiveBases(uint32_t R) const {
    return KLBases[R];
  }

  /// Maximum number of simultaneously live registers at any point in block
  /// \p B (used by the register-pressure cost model).
  unsigned maxPressure(uint32_t B) const { return MaxPressure[B]; }

private:
  std::vector<RegSet> LiveIn, LiveOut;
  std::vector<unsigned> MaxPressure;
  /// KeepLive destination -> base registers. Several KeepLives may write
  /// the same destination along different paths; treating the mapping as a
  /// set (rather than last-writer-wins) keeps the extension conservative —
  /// every base any of them pins stays live wherever the destination is
  /// live.
  std::vector<std::vector<uint32_t>> KLBases;
};

} // namespace opt
} // namespace gcsafe

#endif // GCSAFE_OPT_CFG_H
