//===- gc/Heap.cpp --------------------------------------------*- C++ -*-===//

#include "gc/Heap.h"

#include <cassert>
#include <new>

using namespace gcsafe;
using namespace gcsafe::gc;

PageTable::~PageTable() {
  for (TopEntry *&Head : Top) {
    while (Head) {
      TopEntry *Next = Head->Next;
      delete Head;
      Head = Next;
    }
  }
}

PageTable::TopEntry *PageTable::findOrCreate(uintptr_t Key) {
  TopEntry *&Head = Top[hashKey(Key)];
  for (TopEntry *E = Head; E; E = E->Next)
    if (E->Key == Key)
      return E;
  // Table growth must not crash the process: a failed level-1 node
  // allocation surfaces as insert() == false and becomes a typed OOM in
  // the collector.
  auto *E = new (std::nothrow) TopEntry();
  if (!E)
    return nullptr;
  E->Key = Key;
  E->Next = Head;
  Head = E;
  ++EntryCount;
  return E;
}

bool PageTable::insert(const void *PageAddr, PageDescriptor *Desc) {
  uintptr_t A = reinterpret_cast<uintptr_t>(PageAddr);
  assert((A & (PageSize - 1)) == 0 && "page address not aligned");
  if ((A & (PageSize - 1)) != 0)
    return false;
  uintptr_t Key = A >> (PageSizeLog + ChunkPagesLog);
  TopEntry *E = findOrCreate(Key);
  if (!E)
    return false;
  E->Pages[(A >> PageSizeLog) & (ChunkPages - 1)] = Desc;
  return true;
}

void PageTable::erase(const void *PageAddr) {
  uintptr_t A = reinterpret_cast<uintptr_t>(PageAddr);
  uintptr_t Key = A >> (PageSizeLog + ChunkPagesLog);
  TopEntry *E = Top[hashKey(Key)];
  while (E && E->Key != Key)
    E = E->Next;
  if (E)
    E->Pages[(A >> PageSizeLog) & (ChunkPages - 1)] = nullptr;
}
