//===- gc/Heap.h - Page heap and two-level page table ----------*- C++ -*-===//
//
// Part of the gcsafe project, a reproduction of Boehm, "Simple
// Garbage-Collector-Safety" (PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Low-level heap structures of the conservative collector: pages of
/// uniformly sized objects and the address-to-page mapping. The paper
/// contrasts its checker with Jones/Kelly: "Their fundamental data structure
/// is a splay tree of objects, we use a tree of fixed height 2 describing
/// pages of uniformly sized objects." PageTable below is that fixed-height-2
/// tree: a hashed top level keyed on the high address bits, each entry
/// holding a flat array of page descriptors for a contiguous address chunk.
///
//===----------------------------------------------------------------------===//

#ifndef GCSAFE_GC_HEAP_H
#define GCSAFE_GC_HEAP_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace gcsafe {
namespace gc {

/// Pages are 4 KiB; objects are carved from pages in multiples of the
/// granule (16 bytes).
constexpr size_t PageSizeLog = 12;
constexpr size_t PageSize = size_t(1) << PageSizeLog;
constexpr size_t GranuleSize = 16;
constexpr size_t MaxSlotsPerPage = PageSize / GranuleSize;

/// Objects whose (padded) size exceeds this are allocated as runs of whole
/// pages ("large" objects).
constexpr size_t MaxSmallSize = 2048;

/// Number of size classes: class C holds objects of (C + 1) * GranuleSize
/// bytes.
constexpr size_t NumSizeClasses = MaxSmallSize / GranuleSize;

/// What a page is currently used for.
enum class PageKind : uint8_t {
  PK_Free,       ///< On the free page list.
  PK_Small,      ///< Uniformly sized small objects.
  PK_LargeStart, ///< First page of a large object.
  PK_LargeCont,  ///< Continuation page of a large object.
};

/// Side metadata for one heap page. Never stored inside the page itself so
/// object payloads stay contiguous, mirroring the real collector.
struct PageDescriptor {
  char *PageStart = nullptr;
  PageKind Kind = PageKind::PK_Free;
  bool Atomic = false;     ///< Objects contain no pointers (skip in mark).
  uint16_t ObjSize = 0;    ///< PK_Small: rounded object size in bytes.
  uint16_t ObjCount = 0;   ///< PK_Small: number of slots in the page.
  uint32_t LargePages = 0; ///< PK_LargeStart: total pages in the run.
  size_t LargeSize = 0;    ///< PK_LargeStart: padded object size in bytes.
  PageDescriptor *LargeHead = nullptr; ///< PK_LargeCont: run's first page.
  PageDescriptor *NextFree = nullptr;  ///< Free-page list linkage.

  /// Per-slot bitmaps, indexed by slot number. Sized for the worst case
  /// (GranuleSize-byte slots).
  uint64_t AllocBits[MaxSlotsPerPage / 64] = {};
  uint64_t MarkBits[MaxSlotsPerPage / 64] = {};

  bool allocBit(unsigned Slot) const {
    return (AllocBits[Slot / 64] >> (Slot % 64)) & 1;
  }
  void setAllocBit(unsigned Slot) { AllocBits[Slot / 64] |= uint64_t(1) << (Slot % 64); }
  void clearAllocBit(unsigned Slot) {
    AllocBits[Slot / 64] &= ~(uint64_t(1) << (Slot % 64));
  }
  bool markBit(unsigned Slot) const {
    return (MarkBits[Slot / 64] >> (Slot % 64)) & 1;
  }
  void setMarkBit(unsigned Slot) { MarkBits[Slot / 64] |= uint64_t(1) << (Slot % 64); }
  void clearMarkBit(unsigned Slot) {
    MarkBits[Slot / 64] &= ~(uint64_t(1) << (Slot % 64));
  }
  void clearMarkBits() {
    for (uint64_t &W : MarkBits)
      W = 0;
  }
};

/// Fixed-height-2 address-to-descriptor map. Level 1 is a chained hash
/// table keyed on the address bits above a "chunk" (a 4 MiB span of 1024
/// pages); level 2 is a dense array of descriptor pointers, one per page in
/// the chunk. Lookup is one hash probe plus one array index — the property
/// the paper relies on to make GC_same_obj fast.
class PageTable {
public:
  static constexpr size_t ChunkPagesLog = 10; // 1024 pages = 4 MiB chunk
  static constexpr size_t ChunkPages = size_t(1) << ChunkPagesLog;
  static constexpr size_t TopTableSize = 4096; // power of two

  PageTable() = default;
  PageTable(const PageTable &) = delete;
  PageTable &operator=(const PageTable &) = delete;
  ~PageTable();

  /// Registers \p Desc as the descriptor for the page containing \p
  /// PageAddr (which must be page-aligned). Returns false — registering
  /// nothing — if \p PageAddr is misaligned or growing the table's top
  /// level fails; callers treat that as page-acquisition failure and
  /// roll back rather than aborting.
  bool insert(const void *PageAddr, PageDescriptor *Desc);

  /// Removes the mapping for the page containing \p PageAddr.
  void erase(const void *PageAddr);

  /// Returns the descriptor for the page containing \p Addr, or null if the
  /// address is not inside the collected heap.
  PageDescriptor *lookup(const void *Addr) const {
    uintptr_t A = reinterpret_cast<uintptr_t>(Addr);
    uintptr_t Key = A >> (PageSizeLog + ChunkPagesLog);
    const TopEntry *E = Top[hashKey(Key)];
    while (E && E->Key != Key)
      E = E->Next;
    if (!E)
      return nullptr;
    return E->Pages[(A >> PageSizeLog) & (ChunkPages - 1)];
  }

  /// Number of level-1 entries currently allocated (test hook).
  size_t topEntryCount() const { return EntryCount; }

private:
  struct TopEntry {
    uintptr_t Key = 0;
    TopEntry *Next = nullptr;
    PageDescriptor *Pages[ChunkPages] = {};
  };

  static size_t hashKey(uintptr_t Key) {
    return (Key * 0x9E3779B97F4A7C15ull >> 32) & (TopTableSize - 1);
  }

  TopEntry *findOrCreate(uintptr_t Key);

  TopEntry *Top[TopTableSize] = {};
  size_t EntryCount = 0;
};

} // namespace gc
} // namespace gcsafe

#endif // GCSAFE_GC_HEAP_H
