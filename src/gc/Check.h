//===- gc/Check.h - Pointer-arithmetic checking primitives -----*- C++ -*-===//
//
// Part of the gcsafe project, a reproduction of Boehm, "Simple
// Garbage-Collector-Safety" (PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The runtime functions the checked-mode preprocessor output calls in
/// place of KEEP_LIVE:
///
///   GC_same_obj(p, base)  — checks that p still points to the object base
///                           points to, and returns p. Being a real
///                           external call, it simultaneously has the
///                           intended KEEP_LIVE effect.
///   GC_pre_incr(&p, n)    — p += n with the same check; returns new p.
///   GC_post_incr(&p, n)   — p += n with the same check; returns old p.
///
/// Violations are routed to a handler; the default records them, so a
/// debugging session can keep running (the paper's gawk experiment
/// "immediately and correctly detected a pointer arithmetic error").
/// Checking only applies to heap pointers: if the base operand does not
/// point into the collected heap (stack, statics, a pointer from a foreign
/// allocator, null), the check is skipped — this is why the paper could run
/// cfrac and gawk "linked with the default malloc/free implementation.
/// Hence pointer arithmetic checking was not operational."
///
//===----------------------------------------------------------------------===//

#ifndef GCSAFE_GC_CHECK_H
#define GCSAFE_GC_CHECK_H

#include "gc/Collector.h"

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace gcsafe {
namespace gc {

/// One detected pointer-arithmetic violation.
struct CheckViolation {
  const void *Derived = nullptr; ///< The out-of-object pointer.
  const void *Base = nullptr;    ///< The pointer it was derived from.
  std::string Context;           ///< Optional source context tag.
};

/// Stateful checker bound to one collector. Thread-compatible (no internal
/// locking), matching the single-threaded VM.
class PointerCheck {
public:
  explicit PointerCheck(Collector &C) : C(C) {}

  /// Installs a handler called on each violation (after recording). Pass an
  /// empty function to restore record-only behaviour.
  void setViolationHandler(std::function<void(const CheckViolation &)> Fn) {
    Handler = std::move(Fn);
  }

  /// GC_same_obj: returns \p P; reports a violation if \p Base points into
  /// a heap object but \p P does not point into the same one.
  const void *sameObj(const void *P, const void *Base,
                      const char *Context = nullptr);

  /// GC_pre_incr: *PP += Delta (byte delta) with a same-object check
  /// against the original value; returns the new value.
  void *preIncr(void **PP, ptrdiff_t Delta, const char *Context = nullptr);

  /// GC_post_incr: *PP += Delta with the same check; returns the original
  /// value.
  void *postIncr(void **PP, ptrdiff_t Delta, const char *Context = nullptr);

  size_t checkCount() const { return CheckCount; }
  size_t violationCount() const { return Violations.size(); }
  const std::vector<CheckViolation> &violations() const { return Violations; }
  void reset() {
    CheckCount = 0;
    Violations.clear();
  }

private:
  void reportViolation(const void *Derived, const void *Base,
                       const char *Context);

  Collector &C;
  std::function<void(const CheckViolation &)> Handler;
  std::vector<CheckViolation> Violations;
  size_t CheckCount = 0;
};

} // namespace gc
} // namespace gcsafe

#endif // GCSAFE_GC_CHECK_H
