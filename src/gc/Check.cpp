//===- gc/Check.cpp -------------------------------------------*- C++ -*-===//

#include "gc/Check.h"

using namespace gcsafe;
using namespace gcsafe::gc;

void PointerCheck::reportViolation(const void *Derived, const void *Base,
                                   const char *Context) {
  Violations.push_back(
      {Derived, Base, Context ? std::string(Context) : std::string()});
  if (Handler)
    Handler(Violations.back());
}

const void *PointerCheck::sameObj(const void *P, const void *Base,
                                  const char *Context) {
  ++CheckCount;
  void *BaseObj = C.baseOf(Base);
  if (!BaseObj) {
    // Base addresses heap memory whose object was swept or explicitly
    // deallocated: arithmetic on a dangling pointer. Distinct from the
    // skip case (stack, statics, foreign malloc) the paper describes.
    if (C.pointsToFreedObject(Base))
      reportViolation(P, Base, Context);
    return P;
  }
  if (C.baseOf(P) != BaseObj)
    reportViolation(P, Base, Context);
  return P;
}

void *PointerCheck::preIncr(void **PP, ptrdiff_t Delta, const char *Context) {
  void *Old = *PP;
  void *New = static_cast<char *>(Old) + Delta;
  sameObj(New, Old, Context);
  *PP = New;
  return New;
}

void *PointerCheck::postIncr(void **PP, ptrdiff_t Delta, const char *Context) {
  void *Old = *PP;
  void *New = static_cast<char *>(Old) + Delta;
  sameObj(New, Old, Context);
  *PP = New;
  return Old;
}
