//===- gc/Roots.h - Convenience root holders -------------------*- C++ -*-===//
//
// Part of the gcsafe project, a reproduction of Boehm, "Simple
// Garbage-Collector-Safety" (PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// RAII helpers for making native C++ pointers visible to a Collector
/// without machine-stack scanning: a fixed-capacity RootScope for locals
/// and a growable RootVector for collections of references. These play the
/// role of the GC-roots ("machine stack, registers, and statically
/// allocated memory") for native clients in tests, examples and the cord
/// library.
///
//===----------------------------------------------------------------------===//

#ifndef GCSAFE_GC_ROOTS_H
#define GCSAFE_GC_ROOTS_H

#include "gc/Collector.h"

#include <cstddef>
#include <vector>

namespace gcsafe {
namespace gc {

/// A growable array of void* roots registered with a collector for its
/// lifetime. The backing store lives in the C++ heap, outside the collected
/// heap, so the collector scans it as a root range.
class RootVector {
public:
  explicit RootVector(Collector &C) : C(C) {
    Token = C.addRootScanner([this](RootVisitor &V) {
      if (!Slots.empty())
        V.visitRange(Slots.data(), Slots.data() + Slots.size());
    });
  }
  RootVector(const RootVector &) = delete;
  RootVector &operator=(const RootVector &) = delete;
  ~RootVector() { C.removeRootScanner(Token); }

  void push(void *P) { Slots.push_back(P); }
  void pop() { Slots.pop_back(); }
  void clear() { Slots.clear(); }
  size_t size() const { return Slots.size(); }
  void *&operator[](size_t I) { return Slots[I]; }
  void *operator[](size_t I) const { return Slots[I]; }

private:
  Collector &C;
  std::vector<void *> Slots;
  int Token = 0;
};

/// A typed single-pointer root: keeps one object alive while in scope.
template <typename T> class Root {
public:
  Root(Collector &C, T *Init = nullptr) : C(C), Ptr(Init) {
    Token = C.addRootScanner([this](RootVisitor &V) {
      V.visitWord(reinterpret_cast<uintptr_t>(Ptr));
    });
  }
  Root(const Root &) = delete;
  Root &operator=(const Root &) = delete;
  ~Root() { C.removeRootScanner(Token); }

  T *get() const { return Ptr; }
  T *operator->() const { return Ptr; }
  T &operator*() const { return *Ptr; }
  Root &operator=(T *P) {
    Ptr = P;
    return *this;
  }

private:
  Collector &C;
  T *Ptr;
  int Token = 0;
};

} // namespace gc
} // namespace gcsafe

#endif // GCSAFE_GC_ROOTS_H
