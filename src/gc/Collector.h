//===- gc/Collector.h - Conservative mark-sweep collector ------*- C++ -*-===//
//
// Part of the gcsafe project, a reproduction of Boehm, "Simple
// Garbage-Collector-Safety" (PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A conservative, non-moving mark-sweep garbage collector in the style of
/// [BoehmWeiser88] / [Boehm95], providing the substrate the paper assumes:
///
///  * any address corresponding to some place inside a heap allocated
///    object is recognized as a valid pointer (interior pointers), with an
///    optional base-pointers-only mode for heap-resident pointers (the
///    paper's "Extensions" section);
///  * every heap object is allocated with at least one extra byte at the
///    end, so one-past-the-end pointers keep the object alive;
///  * GC_base-style mapping from any interior address to the object start,
///    backed by the fixed-height-2 page table (see gc/Heap.h), which is what
///    makes the paper's GC_same_obj checking fast;
///  * client-defined root sets (static ranges and callback scanners), plus
///    optional conservative scanning of the machine stack;
///  * sweep-time poisoning of freed objects so premature collection is
///    observable in tests and demos.
///
/// Collector instances are independent; the virtual machine owns one with a
/// custom root scanner over its frames, while native clients (the cord
/// library) use one with registered roots or machine-stack scanning.
///
//===----------------------------------------------------------------------===//

#ifndef GCSAFE_GC_COLLECTOR_H
#define GCSAFE_GC_COLLECTOR_H

#include "gc/Heap.h"
#include "support/FaultInject.h"
#include "support/Profile.h"
#include "support/Trace.h"

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace gcsafe {
namespace gc {

/// Byte written over freed objects when poisoning is enabled.
constexpr unsigned char PoisonByte = 0xDD;

/// What the allocator does when the heap cannot satisfy a request even
/// after the recovery ladder (emergency collection, bounded retries, the
/// client OOM callback).
enum class OomPolicy : uint8_t {
  Graceful, ///< Run the full recovery ladder; on failure return a typed
            ///< error (allocate() returns null) — the default.
  Fail,     ///< No recovery attempts: fail fast with a typed error. For
            ///< deterministic tests of the failure path.
  Abort,    ///< Run the ladder; on failure abort the process (the
            ///< pre-robustness legacy behaviour, opt-in only).
};

const char *oomPolicyName(OomPolicy P);

/// Why an allocation failed.
enum class AllocStatus : uint8_t {
  Ok,
  OutOfMemory, ///< Heap exhausted (or exhaustion injected) and every rung
               ///< of the recovery ladder failed.
  TooLarge,    ///< The request overflowed size arithmetic.
};

const char *allocStatusName(AllocStatus S);

/// Typed allocation outcome (the tryAllocate* surface). ok() implies Ptr
/// is a zeroed heap object; otherwise Status says why there is none.
struct AllocResult {
  void *Ptr = nullptr;
  AllocStatus Status = AllocStatus::Ok;
  bool ok() const { return Status == AllocStatus::Ok; }
};

/// Last-resort client hook invoked when the recovery ladder is exhausted
/// (bdwgc's GC_oom_fn). Receives the *padded* size; must return at least
/// that many writable bytes, or null to let the allocation fail. Returned
/// memory is NOT in the collected heap: the collector neither scans nor
/// reclaims it, and baseOf() on it yields null.
using OomCallback = std::function<void *(size_t PaddedSize)>;

/// One heap-integrity audit (Collector::auditHeap). Counters always cover
/// the whole heap; Violations keeps at most MaxRecorded messages while
/// ViolationCount is the true total.
struct HeapAuditReport {
  static constexpr size_t MaxRecorded = 64;

  bool Ok = true;
  uint64_t ViolationCount = 0;
  uint64_t PagesAudited = 0;
  uint64_t ObjectsAudited = 0;    ///< Live objects (alloc bit set).
  uint64_t FreeSlotsAudited = 0;  ///< Free small slots (incl. poison scan).
  uint64_t LargeRunsAudited = 0;
  std::vector<std::string> Violations;
};

/// Tuning and behaviour switches for one Collector instance.
struct CollectorConfig {
  /// Collect after this many allocation calls (0 = disabled). Used by the
  /// VM to schedule adversarial collections.
  size_t AllocCountTrigger = 0;

  /// Collect after this many bytes allocated since the last collection.
  size_t BytesTrigger = 4 * 1024 * 1024;

  /// Overwrite freed objects with PoisonByte during sweep.
  bool PoisonOnFree = true;

  /// Pad every object by one byte before size-class rounding so a pointer
  /// one past the end still lies inside the object's slot (the paper's
  /// "allocating all heap objects with at least one extra byte at the
  /// end").
  bool OnePastEndSlack = true;

  /// Recognize pointers to the interior of objects found in the heap. When
  /// false, heap-resident words must point to the first byte of an object
  /// to keep it alive; roots may still hold interior pointers (the paper's
  /// Extensions mode).
  bool AllInteriorPointers = true;

  /// Conservatively scan the machine stack of the collecting thread from
  /// the stack bottom recorded at construction (or via setStackBottom).
  bool ScanMachineStack = false;

  /// Keep per-collection event records for the most recent this-many
  /// collections (0 disables recording; cumulative counters still update).
  size_t EventLimit = 256;

  /// Optional event sink: every collection emits cat="gc" trace events
  /// (collect.begin, mark.end, sweep.end, collect.end), and the OOM ladder
  /// and heap audits emit oom.* / audit.* events.
  support::TraceBuffer *Trace = nullptr;

  /// What allocation does when the heap is exhausted. See OomPolicy.
  OomPolicy Oom = OomPolicy::Graceful;

  /// Recovery rungs after the emergency collection: how many more times to
  /// re-collect and retry before invoking OomFn / failing.
  unsigned OomRetries = 3;

  /// Last-resort client OOM hook (bdwgc's GC_oom_fn). See OomCallback.
  OomCallback OomFn;

  /// Hard cap on pages ever obtained from the OS (0 = unlimited). The
  /// testable stand-in for real memory exhaustion: crossing it drives the
  /// same OOM ladder a failed OS allocation would.
  size_t MaxHeapPages = 0;

  /// Run auditHeap() after every collection; violations land in
  /// CollectorStats and the trace.
  bool AuditEachCollection = false;

  /// Per-collection wall budget in nanoseconds (0 = none). A collection
  /// whose mark+sweep exceeds it counts in
  /// CollectorStats::GcDeadlineExceeded and emits a cat="robust"
  /// gc.deadline trace event; the embedder (the VM's --gc-deadline
  /// watchdog) decides whether that is fatal.
  uint64_t CollectDeadlineNs = 0;

  /// Optional failpoint registry. When set, page-segment acquisition,
  /// page-table growth, and the small/large allocation entry points
  /// consult it (sites: heap.segment_alloc, heap.page_table_grow,
  /// gc.alloc_small, gc.alloc_large) and fail on demand, exercising the
  /// OOM ladder deterministically.
  support::FaultInjector *Faults = nullptr;

  /// Optional allocation-site heap profiler (docs/OBSERVABILITY.md §6).
  /// When set, every successful allocation, sweep/deallocate free, and
  /// mark-time interior/false-retention hit is reported to it, attributed
  /// to the site last passed to Collector::setAllocSite().
  support::HeapProfile *Profile = nullptr;
};

/// One collection, as observed by the instrumentation: timing for the two
/// phases plus the marking-accuracy counters the paper's conservatism
/// arguments are about.
struct CollectionEvent {
  uint64_t Index = 0;        ///< 0-based collection number.
  uint64_t MarkNs = 0;       ///< Root scan + transitive marking.
  uint64_t SweepNs = 0;
  uint64_t PagesScanned = 0; ///< Page descriptors examined by the sweep.
  uint64_t WordsScanned = 0; ///< Candidate words examined while marking.
  uint64_t PointerHits = 0;  ///< Words that addressed a live object.
  uint64_t MarkedObjects = 0;
  uint64_t FreedObjects = 0;
  uint64_t LiveBytes = 0;
  /// Hits whose address was not the object's first byte — the interior
  /// pointers conservatism must honor.
  uint64_t InteriorHits = 0;
  /// Objects whose *first* (marking) reference was an interior address: if
  /// that word was a disguised integer rather than a pointer, the object
  /// is falsely retained. The paper's Extensions section exists to shrink
  /// this set.
  uint64_t FalseRetentionCandidates = 0;
};

/// Counters exposed for tests and benchmarks. The *Ns / *Scanned / *Hits
/// fields are cumulative over all collections; Events holds the most
/// recent CollectorConfig::EventLimit per-collection records.
struct CollectorStats {
  size_t Collections = 0;
  size_t AllocationCount = 0;
  size_t BytesRequested = 0;      ///< Cumulative user-requested bytes.
  size_t HeapPages = 0;           ///< Pages ever obtained from the OS.
  size_t LiveBytesAfterLastGC = 0;
  size_t FreedObjectsLastGC = 0;

  uint64_t MarkNs = 0;
  uint64_t SweepNs = 0;
  uint64_t WordsScanned = 0;
  uint64_t PointerHits = 0;
  uint64_t MarkedObjects = 0;
  uint64_t InteriorPointerHits = 0;
  uint64_t FalseRetentionCandidates = 0;

  // The failure story (docs/ROBUSTNESS.md): how often the OOM ladder ran,
  // how far down it got, and what the integrity audits saw.
  uint64_t EmergencyCollections = 0; ///< Ladder rung 1: collect-on-OOM.
  uint64_t OomRetriesPerformed = 0;  ///< Ladder rung 2: re-collect + retry.
  uint64_t OomCallbackInvocations = 0; ///< Ladder rung 3: client OomFn.
  uint64_t AllocFailures = 0;  ///< Typed errors returned to the client.
  uint64_t FaultsInjected = 0; ///< Failpoint firings observed.
  uint64_t SegmentBackoffs = 0; ///< Full-size segment refused; retried at
                                ///< the request's minimum page count.
  uint64_t AuditsRun = 0;
  uint64_t AuditViolations = 0;
  /// Collections whose mark+sweep blew CollectorConfig::CollectDeadlineNs.
  uint64_t GcDeadlineExceeded = 0;

  std::vector<CollectionEvent> Events;
};

/// Passed to registered root scanners; report pointer-holding memory
/// through it.
class RootVisitor {
public:
  virtual ~RootVisitor() = default;
  /// Conservatively scans the aligned words of [\p Begin, \p End).
  virtual void visitRange(const void *Begin, const void *End) = 0;
  /// Treats \p Word as a potential pointer.
  virtual void visitWord(uintptr_t Word) = 0;
};

using RootScanFn = std::function<void(RootVisitor &)>;

/// The collector. See file comment.
class Collector {
public:
  explicit Collector(CollectorConfig Config = CollectorConfig());
  Collector(const Collector &) = delete;
  Collector &operator=(const Collector &) = delete;
  ~Collector();

  /// Allocates \p Size bytes of zeroed, pointer-containing memory. May
  /// trigger a collection first. On exhaustion runs the OOM recovery
  /// ladder; if that fails, returns null under the Graceful/Fail policies
  /// and aborts only under OomPolicy::Abort.
  void *allocate(size_t Size);

  /// Allocates \p Size bytes the collector will not scan for pointers
  /// (strings, numeric arrays). Same failure contract as allocate().
  void *allocateAtomic(size_t Size);

  /// The typed-result allocation surface: like allocate()/allocateAtomic()
  /// but never aborts regardless of policy; failures come back as an
  /// AllocStatus.
  AllocResult tryAllocate(size_t Size);
  AllocResult tryAllocateAtomic(size_t Size);

  /// Walks the whole heap validating its invariants: page-table
  /// cross-mapping, alloc/mark-bit consistency, free-list sanity,
  /// poison-byte integrity of freed slots, and large-run linkage. Safe to
  /// call at any point outside an in-progress collection; allocates only
  /// in the C++ heap. Updates CollectorStats::AuditsRun/AuditViolations
  /// and emits gc/audit.* trace events.
  HeapAuditReport auditHeap();

  /// Forces a full mark-sweep collection now (no-op while disabled).
  void collect();

  /// Explicit deallocation (GC_free): immediately frees the object \p P
  /// points into. Provided for completeness; clients normally never call
  /// it.
  void deallocate(void *P);

  /// Returns the start of the heap object containing \p P, or null if \p P
  /// does not point into a live heap object. Interior pointers are always
  /// accepted here, in every mode (this is the GC_base operation the
  /// checker relies on).
  void *baseOf(const void *P) const;

  /// True if \p P points into a live heap object.
  bool isHeapPointer(const void *P) const { return baseOf(P) != nullptr; }

  /// True if \p P points into heap memory whose object has been freed
  /// (swept or explicitly deallocated). Used by the VM to detect premature
  /// collection: a GC-safety failure manifests as a load from a freed,
  /// poisoned object.
  bool pointsToFreedObject(const void *P) const;

  /// True if \p P and \p Q point into the same live heap object (the
  /// predicate behind the paper's GC_same_obj).
  bool sameObject(const void *P, const void *Q) const;

  /// Returns the usable (padded) size of the object containing \p P; 0 if
  /// \p P is not a heap pointer. The padding is why the paper calls its
  /// checking "not completely accurate, since the garbage collector rounds
  /// up object sizes".
  size_t objectSize(const void *P) const;

  /// Registers [\p Begin, \p End) as a permanent root range.
  void addStaticRoots(const void *Begin, const void *End);

  /// Removes a root range previously registered with the same \p Begin.
  void removeStaticRoots(const void *Begin);

  /// Registers a callback invoked during marking to report additional
  /// roots; returns a token for removeRootScanner.
  int addRootScanner(RootScanFn Fn);
  void removeRootScanner(int Token);

  /// Nested disable/enable of automatic and explicit collections.
  void disableCollection() { ++DisableDepth; }
  void enableCollection() {
    if (DisableDepth)
      --DisableDepth;
  }

  /// Records the high end of the machine stack for ScanMachineStack mode.
  void setStackBottom(const void *Bottom) { StackBottom = Bottom; }

  const CollectorStats &stats() const { return Stats; }
  const CollectorConfig &config() const { return Config; }
  void setAllocCountTrigger(size_t N) { Config.AllocCountTrigger = N; }

  /// Tags subsequent allocations with an allocation site interned in
  /// Config.Profile (HeapProfile::UntaggedSite = untagged). The VM sets
  /// this before each gc_malloc/calloc/realloc builtin; the tag is sticky
  /// until the next call. No-op without a profiler attached.
  void setAllocSite(size_t Site) { CurAllocSite = Site; }

  /// Test hook: the page table.
  const PageTable &pageTable() const { return Table; }

private:
  struct Segment {
    char *Base = nullptr;
    size_t Pages = 0;
    size_t NextFreePage = 0;
  };

  struct FreeSlot {
    FreeSlot *Next;
  };

  class MarkVisitor;

  size_t paddedSize(size_t Size) const;
  void *allocateSmall(size_t Padded, bool Atomic);
  void *allocateLarge(size_t Padded, bool Atomic);
  void *allocateImpl(size_t Size, bool Atomic);
  AllocResult tryAllocateImpl(size_t Size, bool Atomic);
  void *attemptAlloc(size_t Padded, bool Atomic, bool Small);
  void *recoverFromOom(size_t Padded, bool Atomic, bool Small, size_t Size);
  bool faultFires(size_t SiteId);
  void maybeCollect();
  PageDescriptor *takeFreePage();
  char *takePageRun(size_t NPages, std::vector<PageDescriptor *> &Descs);
  void initSmallPage(PageDescriptor *Desc, size_t ObjSize, bool Atomic);

  void markAddress(uintptr_t Addr, bool FromHeap);
  void markRange(const char *Begin, const char *End, bool FromHeap);
  void drainMarkStack();
  void scanMachineStack();
  void sweep();
  void rebuildFreeLists();

  CollectorConfig Config;
  CollectorStats Stats;
  PageTable Table;
  std::vector<Segment> Segments;
  std::vector<PageDescriptor *> AllPages; // every descriptor ever created
  PageDescriptor *FreePageList = nullptr;
  FreeSlot *FreeLists[NumSizeClasses] = {};

  struct RootRange {
    const char *Begin;
    const char *End;
  };
  std::vector<RootRange> StaticRoots;
  std::vector<std::pair<int, RootScanFn>> RootScanners;
  int NextScannerToken = 1;

  struct MarkItem {
    char *Begin;
    size_t Size;
  };
  std::vector<MarkItem> MarkStack;

  CollectionEvent CurEvent; ///< Scratch for the collection in progress.
  size_t CurAllocSite = support::HeapProfile::UntaggedSite;
  size_t BytesSinceGC = 0;
  size_t AllocsSinceGC = 0;
  unsigned DisableDepth = 0;
  bool InCollection = false;
  const void *StackBottom = nullptr;

  /// Cached failpoint handles (valid only when Config.Faults is set).
  size_t FpSegmentAlloc = 0;
  size_t FpPageTableGrow = 0;
  size_t FpAllocSmall = 0;
  size_t FpAllocLarge = 0;
};

} // namespace gc
} // namespace gcsafe

#endif // GCSAFE_GC_COLLECTOR_H
