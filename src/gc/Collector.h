//===- gc/Collector.h - Conservative mark-sweep collector ------*- C++ -*-===//
//
// Part of the gcsafe project, a reproduction of Boehm, "Simple
// Garbage-Collector-Safety" (PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A conservative, non-moving mark-sweep garbage collector in the style of
/// [BoehmWeiser88] / [Boehm95], providing the substrate the paper assumes:
///
///  * any address corresponding to some place inside a heap allocated
///    object is recognized as a valid pointer (interior pointers), with an
///    optional base-pointers-only mode for heap-resident pointers (the
///    paper's "Extensions" section);
///  * every heap object is allocated with at least one extra byte at the
///    end, so one-past-the-end pointers keep the object alive;
///  * GC_base-style mapping from any interior address to the object start,
///    backed by the fixed-height-2 page table (see gc/Heap.h), which is what
///    makes the paper's GC_same_obj checking fast;
///  * client-defined root sets (static ranges and callback scanners), plus
///    optional conservative scanning of the machine stack;
///  * sweep-time poisoning of freed objects so premature collection is
///    observable in tests and demos.
///
/// Collector instances are independent; the virtual machine owns one with a
/// custom root scanner over its frames, while native clients (the cord
/// library) use one with registered roots or machine-stack scanning.
///
//===----------------------------------------------------------------------===//

#ifndef GCSAFE_GC_COLLECTOR_H
#define GCSAFE_GC_COLLECTOR_H

#include "gc/Heap.h"
#include "support/Trace.h"

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

namespace gcsafe {
namespace gc {

/// Byte written over freed objects when poisoning is enabled.
constexpr unsigned char PoisonByte = 0xDD;

/// Tuning and behaviour switches for one Collector instance.
struct CollectorConfig {
  /// Collect after this many allocation calls (0 = disabled). Used by the
  /// VM to schedule adversarial collections.
  size_t AllocCountTrigger = 0;

  /// Collect after this many bytes allocated since the last collection.
  size_t BytesTrigger = 4 * 1024 * 1024;

  /// Overwrite freed objects with PoisonByte during sweep.
  bool PoisonOnFree = true;

  /// Pad every object by one byte before size-class rounding so a pointer
  /// one past the end still lies inside the object's slot (the paper's
  /// "allocating all heap objects with at least one extra byte at the
  /// end").
  bool OnePastEndSlack = true;

  /// Recognize pointers to the interior of objects found in the heap. When
  /// false, heap-resident words must point to the first byte of an object
  /// to keep it alive; roots may still hold interior pointers (the paper's
  /// Extensions mode).
  bool AllInteriorPointers = true;

  /// Conservatively scan the machine stack of the collecting thread from
  /// the stack bottom recorded at construction (or via setStackBottom).
  bool ScanMachineStack = false;

  /// Keep per-collection event records for the most recent this-many
  /// collections (0 disables recording; cumulative counters still update).
  size_t EventLimit = 256;

  /// Optional event sink: every collection emits cat="gc" trace events
  /// (collect.begin, mark.end, sweep.end, collect.end).
  support::TraceBuffer *Trace = nullptr;
};

/// One collection, as observed by the instrumentation: timing for the two
/// phases plus the marking-accuracy counters the paper's conservatism
/// arguments are about.
struct CollectionEvent {
  uint64_t Index = 0;        ///< 0-based collection number.
  uint64_t MarkNs = 0;       ///< Root scan + transitive marking.
  uint64_t SweepNs = 0;
  uint64_t PagesScanned = 0; ///< Page descriptors examined by the sweep.
  uint64_t WordsScanned = 0; ///< Candidate words examined while marking.
  uint64_t PointerHits = 0;  ///< Words that addressed a live object.
  uint64_t MarkedObjects = 0;
  uint64_t FreedObjects = 0;
  uint64_t LiveBytes = 0;
  /// Hits whose address was not the object's first byte — the interior
  /// pointers conservatism must honor.
  uint64_t InteriorHits = 0;
  /// Objects whose *first* (marking) reference was an interior address: if
  /// that word was a disguised integer rather than a pointer, the object
  /// is falsely retained. The paper's Extensions section exists to shrink
  /// this set.
  uint64_t FalseRetentionCandidates = 0;
};

/// Counters exposed for tests and benchmarks. The *Ns / *Scanned / *Hits
/// fields are cumulative over all collections; Events holds the most
/// recent CollectorConfig::EventLimit per-collection records.
struct CollectorStats {
  size_t Collections = 0;
  size_t AllocationCount = 0;
  size_t BytesRequested = 0;      ///< Cumulative user-requested bytes.
  size_t HeapPages = 0;           ///< Pages ever obtained from the OS.
  size_t LiveBytesAfterLastGC = 0;
  size_t FreedObjectsLastGC = 0;

  uint64_t MarkNs = 0;
  uint64_t SweepNs = 0;
  uint64_t WordsScanned = 0;
  uint64_t PointerHits = 0;
  uint64_t MarkedObjects = 0;
  uint64_t InteriorPointerHits = 0;
  uint64_t FalseRetentionCandidates = 0;

  std::vector<CollectionEvent> Events;
};

/// Passed to registered root scanners; report pointer-holding memory
/// through it.
class RootVisitor {
public:
  virtual ~RootVisitor() = default;
  /// Conservatively scans the aligned words of [\p Begin, \p End).
  virtual void visitRange(const void *Begin, const void *End) = 0;
  /// Treats \p Word as a potential pointer.
  virtual void visitWord(uintptr_t Word) = 0;
};

using RootScanFn = std::function<void(RootVisitor &)>;

/// The collector. See file comment.
class Collector {
public:
  explicit Collector(CollectorConfig Config = CollectorConfig());
  Collector(const Collector &) = delete;
  Collector &operator=(const Collector &) = delete;
  ~Collector();

  /// Allocates \p Size bytes of zeroed, pointer-containing memory. May
  /// trigger a collection first. Never returns null (aborts on OOM).
  void *allocate(size_t Size);

  /// Allocates \p Size bytes the collector will not scan for pointers
  /// (strings, numeric arrays).
  void *allocateAtomic(size_t Size);

  /// Forces a full mark-sweep collection now (no-op while disabled).
  void collect();

  /// Explicit deallocation (GC_free): immediately frees the object \p P
  /// points into. Provided for completeness; clients normally never call
  /// it.
  void deallocate(void *P);

  /// Returns the start of the heap object containing \p P, or null if \p P
  /// does not point into a live heap object. Interior pointers are always
  /// accepted here, in every mode (this is the GC_base operation the
  /// checker relies on).
  void *baseOf(const void *P) const;

  /// True if \p P points into a live heap object.
  bool isHeapPointer(const void *P) const { return baseOf(P) != nullptr; }

  /// True if \p P points into heap memory whose object has been freed
  /// (swept or explicitly deallocated). Used by the VM to detect premature
  /// collection: a GC-safety failure manifests as a load from a freed,
  /// poisoned object.
  bool pointsToFreedObject(const void *P) const;

  /// True if \p P and \p Q point into the same live heap object (the
  /// predicate behind the paper's GC_same_obj).
  bool sameObject(const void *P, const void *Q) const;

  /// Returns the usable (padded) size of the object containing \p P; 0 if
  /// \p P is not a heap pointer. The padding is why the paper calls its
  /// checking "not completely accurate, since the garbage collector rounds
  /// up object sizes".
  size_t objectSize(const void *P) const;

  /// Registers [\p Begin, \p End) as a permanent root range.
  void addStaticRoots(const void *Begin, const void *End);

  /// Removes a root range previously registered with the same \p Begin.
  void removeStaticRoots(const void *Begin);

  /// Registers a callback invoked during marking to report additional
  /// roots; returns a token for removeRootScanner.
  int addRootScanner(RootScanFn Fn);
  void removeRootScanner(int Token);

  /// Nested disable/enable of automatic and explicit collections.
  void disableCollection() { ++DisableDepth; }
  void enableCollection() {
    if (DisableDepth)
      --DisableDepth;
  }

  /// Records the high end of the machine stack for ScanMachineStack mode.
  void setStackBottom(const void *Bottom) { StackBottom = Bottom; }

  const CollectorStats &stats() const { return Stats; }
  const CollectorConfig &config() const { return Config; }
  void setAllocCountTrigger(size_t N) { Config.AllocCountTrigger = N; }

  /// Test hook: the page table.
  const PageTable &pageTable() const { return Table; }

private:
  struct Segment {
    char *Base = nullptr;
    size_t Pages = 0;
    size_t NextFreePage = 0;
  };

  struct FreeSlot {
    FreeSlot *Next;
  };

  class MarkVisitor;

  size_t paddedSize(size_t Size) const;
  void *allocateSmall(size_t Padded, bool Atomic);
  void *allocateLarge(size_t Padded, bool Atomic);
  void *allocateImpl(size_t Size, bool Atomic);
  void maybeCollect();
  PageDescriptor *takeFreePage();
  char *takePageRun(size_t NPages, std::vector<PageDescriptor *> &Descs);
  void initSmallPage(PageDescriptor *Desc, size_t ObjSize, bool Atomic);

  void markAddress(uintptr_t Addr, bool FromHeap);
  void markRange(const char *Begin, const char *End, bool FromHeap);
  void drainMarkStack();
  void scanMachineStack();
  void sweep();
  void rebuildFreeLists();

  CollectorConfig Config;
  CollectorStats Stats;
  PageTable Table;
  std::vector<Segment> Segments;
  std::vector<PageDescriptor *> AllPages; // every descriptor ever created
  PageDescriptor *FreePageList = nullptr;
  FreeSlot *FreeLists[NumSizeClasses] = {};

  struct RootRange {
    const char *Begin;
    const char *End;
  };
  std::vector<RootRange> StaticRoots;
  std::vector<std::pair<int, RootScanFn>> RootScanners;
  int NextScannerToken = 1;

  struct MarkItem {
    char *Begin;
    size_t Size;
  };
  std::vector<MarkItem> MarkStack;

  CollectionEvent CurEvent; ///< Scratch for the collection in progress.
  size_t BytesSinceGC = 0;
  size_t AllocsSinceGC = 0;
  unsigned DisableDepth = 0;
  bool InCollection = false;
  const void *StackBottom = nullptr;
};

} // namespace gc
} // namespace gcsafe

#endif // GCSAFE_GC_COLLECTOR_H
