//===- gc/Collector.cpp ---------------------------------------*- C++ -*-===//

#include "gc/Collector.h"

#include <cassert>
#include <csetjmp>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>

using namespace gcsafe;
using namespace gcsafe::gc;

namespace {
constexpr size_t SegmentPages = 256; // 1 MiB segments
} // namespace

const char *gcsafe::gc::oomPolicyName(OomPolicy P) {
  switch (P) {
  case OomPolicy::Graceful: return "graceful";
  case OomPolicy::Fail: return "fail";
  case OomPolicy::Abort: return "abort";
  }
  return "?";
}

const char *gcsafe::gc::allocStatusName(AllocStatus S) {
  switch (S) {
  case AllocStatus::Ok: return "ok";
  case AllocStatus::OutOfMemory: return "out-of-memory";
  case AllocStatus::TooLarge: return "too-large";
  }
  return "?";
}

Collector::Collector(CollectorConfig ConfigIn) : Config(std::move(ConfigIn)) {
  if (Config.Faults) {
    FpSegmentAlloc = Config.Faults->siteId("heap.segment_alloc");
    FpPageTableGrow = Config.Faults->siteId("heap.page_table_grow");
    FpAllocSmall = Config.Faults->siteId("gc.alloc_small");
    FpAllocLarge = Config.Faults->siteId("gc.alloc_large");
  }
}

bool Collector::faultFires(size_t SiteId) {
  if (!Config.Faults || !Config.Faults->shouldFail(SiteId))
    return false;
  ++Stats.FaultsInjected;
  return true;
}

Collector::~Collector() {
  for (Segment &S : Segments)
    std::free(S.Base);
  for (PageDescriptor *D : AllPages)
    delete D;
}

size_t Collector::paddedSize(size_t Size) const {
  if (Size == 0)
    Size = 1;
  if (Config.OnePastEndSlack)
    Size += 1;
  return (Size + GranuleSize - 1) & ~(GranuleSize - 1);
}

void Collector::maybeCollect() {
  if (DisableDepth || InCollection)
    return;
  bool CountHit =
      Config.AllocCountTrigger && AllocsSinceGC >= Config.AllocCountTrigger;
  bool BytesHit = BytesSinceGC >= Config.BytesTrigger;
  if (CountHit || BytesHit)
    collect();
}

void *Collector::allocate(size_t Size) { return allocateImpl(Size, false); }

void *Collector::allocateAtomic(size_t Size) {
  return allocateImpl(Size, true);
}

AllocResult Collector::tryAllocate(size_t Size) {
  return tryAllocateImpl(Size, false);
}

AllocResult Collector::tryAllocateAtomic(size_t Size) {
  return tryAllocateImpl(Size, true);
}

void *Collector::allocateImpl(size_t Size, bool Atomic) {
  AllocResult R = tryAllocateImpl(Size, Atomic);
  if (R.ok())
    return R.Ptr;
  if (Config.Oom == OomPolicy::Abort) {
    std::fprintf(stderr, "gcsafe: out of memory (%zu bytes, %s)\n", Size,
                 allocStatusName(R.Status));
    std::abort();
  }
  return nullptr;
}

/// One allocation attempt, with the entry failpoints applied. Retries call
/// this again, re-drawing the failpoints, so injected transient failures
/// can recover on a later rung.
void *Collector::attemptAlloc(size_t Padded, bool Atomic, bool Small) {
  if (faultFires(Small ? FpAllocSmall : FpAllocLarge))
    return nullptr;
  return Small ? allocateSmall(Padded, Atomic)
               : allocateLarge(Padded, Atomic);
}

/// The OOM recovery ladder (docs/ROBUSTNESS.md): emergency collection,
/// then Config.OomRetries re-collect-and-retry rungs, then the client
/// callback. Returns null only when every rung failed.
void *Collector::recoverFromOom(size_t Padded, bool Atomic, bool Small,
                                size_t Size) {
  if (Config.Oom == OomPolicy::Fail)
    return nullptr;
  void *P = nullptr;
  bool CanCollect = !DisableDepth && !InCollection;
  if (CanCollect) {
    ++Stats.EmergencyCollections;
    if (Config.Trace)
      Config.Trace->emit("gc", "oom.emergency", Size, Stats.HeapPages);
    collect();
    P = attemptAlloc(Padded, Atomic, Small);
  }
  for (unsigned I = 0; !P && I < Config.OomRetries; ++I) {
    ++Stats.OomRetriesPerformed;
    if (Config.Trace)
      Config.Trace->emit("gc", "oom.retry", I + 1, Size);
    if (I > 0 && CanCollect)
      collect();
    P = attemptAlloc(Padded, Atomic, Small);
  }
  if (!P && Config.OomFn) {
    ++Stats.OomCallbackInvocations;
    if (Config.Trace)
      Config.Trace->emit("gc", "oom.callback", Padded, 0);
    P = Config.OomFn(Padded);
  }
  return P;
}

AllocResult Collector::tryAllocateImpl(size_t Size, bool Atomic) {
  ++AllocsSinceGC;
  ++Stats.AllocationCount;
  Stats.BytesRequested += Size;
  maybeCollect();
  size_t Padded = paddedSize(Size);
  if (Padded < Size) { // size arithmetic overflowed: invalid request
    ++Stats.AllocFailures;
    return {nullptr, AllocStatus::TooLarge};
  }
  BytesSinceGC += Padded;
  bool Small = Padded <= MaxSmallSize;
  void *Result = attemptAlloc(Padded, Atomic, Small);
  if (!Result)
    Result = recoverFromOom(Padded, Atomic, Small, Size);
  if (!Result) {
    ++Stats.AllocFailures;
    if (Config.Trace)
      Config.Trace->emit("gc", "oom.fail", Size, Stats.HeapPages);
    return {nullptr, AllocStatus::OutOfMemory};
  }
  std::memset(Result, 0, Padded);
  // OomFn can hand out memory outside the collected heap; only heap
  // objects enter the profile (the sweep never reports frees for the
  // rest, and the live-bytes invariant is over heap objects only).
  if (Config.Profile && baseOf(Result) == Result)
    Config.Profile->recordAlloc(Result, Size, Padded, CurAllocSite,
                                Stats.Collections);
  return {Result, AllocStatus::Ok};
}

void *Collector::allocateSmall(size_t Padded, bool Atomic) {
  size_t Class = Padded / GranuleSize - 1;
  assert(Class < NumSizeClasses && "bad size class");
  if (Class >= NumSizeClasses)
    return nullptr; // defensive: invalid request must not corrupt the heap

  // The free list for a class may hold slots from both atomic and normal
  // pages; re-check the page kind and skip mismatches by re-initializing a
  // fresh page instead. To keep the lists homogeneous we simply use the
  // page's own atomic flag: a slot popped from a page of the wrong
  // atomicity is pushed back and a new page is initialized. In practice the
  // lists are rebuilt every sweep, so we keep it simple and search.
  FreeSlot **Prev = &FreeLists[Class];
  for (FreeSlot *Slot = *Prev; Slot; Prev = &Slot->Next, Slot = Slot->Next) {
    PageDescriptor *Desc = Table.lookup(Slot);
    assert(Desc && Desc->Kind == PageKind::PK_Small);
    if (Desc->Atomic != Atomic)
      continue;
    *Prev = Slot->Next;
    unsigned SlotIdx = static_cast<unsigned>(
        (reinterpret_cast<char *>(Slot) - Desc->PageStart) / Desc->ObjSize);
    Desc->setAllocBit(SlotIdx);
    return Slot;
  }

  PageDescriptor *Desc = takeFreePage();
  if (!Desc)
    return nullptr; // page acquisition failed; the caller runs the ladder
  initSmallPage(Desc, Padded, Atomic);
  // initSmallPage pushed all slots; pop the first.
  FreeSlot *Slot = FreeLists[Class];
  assert(Slot && "freshly initialized page has no free slots");
  FreeLists[Class] = Slot->Next;
  unsigned SlotIdx = static_cast<unsigned>(
      (reinterpret_cast<char *>(Slot) - Desc->PageStart) / Desc->ObjSize);
  Desc->setAllocBit(SlotIdx);
  return Slot;
}

void Collector::initSmallPage(PageDescriptor *Desc, size_t ObjSize,
                              bool Atomic) {
  Desc->Kind = PageKind::PK_Small;
  Desc->Atomic = Atomic;
  Desc->ObjSize = static_cast<uint16_t>(ObjSize);
  Desc->ObjCount = static_cast<uint16_t>(PageSize / ObjSize);
  Desc->LargePages = 0;
  Desc->LargeSize = 0;
  Desc->LargeHead = nullptr;
  for (uint64_t &W : Desc->AllocBits)
    W = 0;
  Desc->clearMarkBits();

  // Poison the whole page before carving it into free slots so the audit's
  // poison-byte invariant (every free slot is PoisonByte beyond its
  // free-list header) holds for never-yet-allocated slots too.
  if (Config.PoisonOnFree)
    std::memset(Desc->PageStart, PoisonByte, PageSize);

  size_t Class = ObjSize / GranuleSize - 1;
  for (unsigned I = 0; I < Desc->ObjCount; ++I) {
    auto *Slot = reinterpret_cast<FreeSlot *>(Desc->PageStart + I * ObjSize);
    Slot->Next = FreeLists[Class];
    FreeLists[Class] = Slot;
  }
}

void *Collector::allocateLarge(size_t Padded, bool Atomic) {
  size_t NPages = (Padded + PageSize - 1) / PageSize;
  std::vector<PageDescriptor *> Descs;
  char *Run = takePageRun(NPages, Descs);
  if (!Run)
    return nullptr;
  PageDescriptor *Head = Descs[0];
  Head->Kind = PageKind::PK_LargeStart;
  Head->Atomic = Atomic;
  Head->LargePages = static_cast<uint32_t>(NPages);
  Head->LargeSize = Padded;
  Head->LargeHead = nullptr;
  for (uint64_t &W : Head->AllocBits)
    W = 0;
  Head->clearMarkBits();
  Head->setAllocBit(0);
  for (size_t I = 1; I < NPages; ++I) {
    PageDescriptor *Cont = Descs[I];
    Cont->Kind = PageKind::PK_LargeCont;
    Cont->Atomic = Atomic;
    Cont->LargeHead = Head;
  }
  return Run;
}

PageDescriptor *Collector::takeFreePage() {
  if (FreePageList) {
    PageDescriptor *Desc = FreePageList;
    FreePageList = Desc->NextFree;
    Desc->NextFree = nullptr;
    return Desc;
  }
  std::vector<PageDescriptor *> Descs;
  if (!takePageRun(1, Descs))
    return nullptr;
  return Descs[0];
}

char *Collector::takePageRun(size_t NPages,
                             std::vector<PageDescriptor *> &Descs) {
  // Hard heap cap (testable stand-in for real exhaustion): refuse to grow
  // past Config.MaxHeapPages. 0 means unlimited.
  if (Config.MaxHeapPages && Stats.HeapPages + NPages > Config.MaxHeapPages)
    return nullptr;

  // Try to bump-allocate from the most recent segment.
  Segment *Seg = nullptr;
  if (!Segments.empty() &&
      Segments.back().NextFreePage + NPages <= Segments.back().Pages)
    Seg = &Segments.back();
  if (!Seg) {
    if (faultFires(FpSegmentAlloc))
      return nullptr;
    size_t Want = NPages > SegmentPages ? NPages : SegmentPages;
    // Don't speculatively reserve past the cap; the earlier check
    // guarantees Room >= NPages.
    if (Config.MaxHeapPages) {
      size_t Room = Config.MaxHeapPages - Stats.HeapPages;
      if (Want > Room)
        Want = Room;
    }
    char *Base =
        static_cast<char *>(std::aligned_alloc(PageSize, Want * PageSize));
    if (!Base && Want > NPages) {
      // Backoff: the full segment reserve failed; retry at the request's
      // exact size before reporting exhaustion.
      ++Stats.SegmentBackoffs;
      Want = NPages;
      Base =
          static_cast<char *>(std::aligned_alloc(PageSize, Want * PageSize));
    }
    if (!Base)
      return nullptr;
    Segments.push_back({Base, Want, 0});
    Seg = &Segments.back();
  }
  char *Run = Seg->Base + Seg->NextFreePage * PageSize;
  size_t FirstDesc = Descs.size();
  for (size_t I = 0; I < NPages; ++I) {
    PageDescriptor *Desc = nullptr;
    if (!faultFires(FpPageTableGrow))
      Desc = new (std::nothrow) PageDescriptor();
    if (Desc)
      Desc->PageStart = Run + I * PageSize;
    if (!Desc || !Table.insert(Desc->PageStart, Desc)) {
      // Mid-run failure: unregister the pages already mapped for this run
      // and leave the bump pointer untouched, so the heap is exactly as it
      // was before the call. The segment (if freshly reserved) is kept for
      // future requests.
      delete Desc;
      while (Descs.size() > FirstDesc) {
        PageDescriptor *Prev = Descs.back();
        Descs.pop_back();
        Table.erase(Prev->PageStart);
        assert(!AllPages.empty() && AllPages.back() == Prev);
        AllPages.pop_back();
        delete Prev;
      }
      return nullptr;
    }
    AllPages.push_back(Desc);
    Descs.push_back(Desc);
  }
  Seg->NextFreePage += NPages;
  Stats.HeapPages += NPages;
  return Run;
}

void *Collector::baseOf(const void *P) const {
  const PageDescriptor *Desc = Table.lookup(P);
  if (!Desc)
    return nullptr;
  uintptr_t A = reinterpret_cast<uintptr_t>(P);
  switch (Desc->Kind) {
  case PageKind::PK_Free:
    return nullptr;
  case PageKind::PK_Small: {
    unsigned Slot = static_cast<unsigned>(
        (A - reinterpret_cast<uintptr_t>(Desc->PageStart)) / Desc->ObjSize);
    if (Slot >= Desc->ObjCount || !Desc->allocBit(Slot))
      return nullptr;
    return Desc->PageStart + size_t(Slot) * Desc->ObjSize;
  }
  case PageKind::PK_LargeStart:
    return Desc->allocBit(0) ? Desc->PageStart : nullptr;
  case PageKind::PK_LargeCont: {
    const PageDescriptor *Head = Desc->LargeHead;
    if (!Head || !Head->allocBit(0))
      return nullptr;
    // Reject addresses past the object's padded size (trailing slack of the
    // final page).
    uintptr_t Off = A - reinterpret_cast<uintptr_t>(Head->PageStart);
    if (Off >= Head->LargeSize)
      return nullptr;
    return Head->PageStart;
  }
  }
  return nullptr;
}

bool Collector::pointsToFreedObject(const void *P) const {
  const PageDescriptor *Desc = Table.lookup(P);
  if (!Desc)
    return false;
  uintptr_t A = reinterpret_cast<uintptr_t>(P);
  switch (Desc->Kind) {
  case PageKind::PK_Free:
    return true; // page was heap, now reclaimed
  case PageKind::PK_Small: {
    unsigned Slot = static_cast<unsigned>(
        (A - reinterpret_cast<uintptr_t>(Desc->PageStart)) / Desc->ObjSize);
    return Slot < Desc->ObjCount && !Desc->allocBit(Slot);
  }
  case PageKind::PK_LargeStart:
    return !Desc->allocBit(0);
  case PageKind::PK_LargeCont:
    return !Desc->LargeHead || !Desc->LargeHead->allocBit(0);
  }
  return false;
}

bool Collector::sameObject(const void *P, const void *Q) const {
  void *BP = baseOf(P);
  return BP != nullptr && BP == baseOf(Q);
}

size_t Collector::objectSize(const void *P) const {
  const PageDescriptor *Desc = Table.lookup(P);
  if (!Desc)
    return 0;
  if (Desc->Kind == PageKind::PK_Small)
    return baseOf(P) ? Desc->ObjSize : 0;
  if (Desc->Kind == PageKind::PK_LargeStart ||
      Desc->Kind == PageKind::PK_LargeCont)
    return baseOf(P) ? (Desc->Kind == PageKind::PK_LargeCont
                            ? Desc->LargeHead->LargeSize
                            : Desc->LargeSize)
                     : 0;
  return 0;
}

void Collector::addStaticRoots(const void *Begin, const void *End) {
  StaticRoots.push_back(
      {static_cast<const char *>(Begin), static_cast<const char *>(End)});
}

void Collector::removeStaticRoots(const void *Begin) {
  for (size_t I = 0; I < StaticRoots.size(); ++I) {
    if (StaticRoots[I].Begin == Begin) {
      StaticRoots.erase(StaticRoots.begin() + I);
      return;
    }
  }
}

int Collector::addRootScanner(RootScanFn Fn) {
  int Token = NextScannerToken++;
  RootScanners.emplace_back(Token, std::move(Fn));
  return Token;
}

void Collector::removeRootScanner(int Token) {
  for (size_t I = 0; I < RootScanners.size(); ++I) {
    if (RootScanners[I].first == Token) {
      RootScanners.erase(RootScanners.begin() + I);
      return;
    }
  }
}

//===----------------------------------------------------------------------===//
// Marking
//===----------------------------------------------------------------------===//

class Collector::MarkVisitor : public RootVisitor {
public:
  explicit MarkVisitor(Collector &C) : C(C) {}
  void visitRange(const void *Begin, const void *End) override {
    C.markRange(static_cast<const char *>(Begin),
                static_cast<const char *>(End), /*FromHeap=*/false);
  }
  void visitWord(uintptr_t Word) override {
    C.markAddress(Word, /*FromHeap=*/false);
  }

private:
  Collector &C;
};

void Collector::markAddress(uintptr_t Addr, bool FromHeap) {
  PageDescriptor *Desc = Table.lookup(reinterpret_cast<void *>(Addr));
  if (!Desc)
    return;
  char *Base = nullptr;
  size_t Size = 0;
  bool Atomic = false;
  PageDescriptor *BitsDesc = nullptr;
  unsigned BitSlot = 0;

  switch (Desc->Kind) {
  case PageKind::PK_Free:
    return;
  case PageKind::PK_Small: {
    unsigned Slot = static_cast<unsigned>(
        (Addr - reinterpret_cast<uintptr_t>(Desc->PageStart)) / Desc->ObjSize);
    if (Slot >= Desc->ObjCount || !Desc->allocBit(Slot))
      return;
    Base = Desc->PageStart + size_t(Slot) * Desc->ObjSize;
    Size = Desc->ObjSize;
    Atomic = Desc->Atomic;
    BitsDesc = Desc;
    BitSlot = Slot;
    break;
  }
  case PageKind::PK_LargeStart:
  case PageKind::PK_LargeCont: {
    PageDescriptor *Head =
        Desc->Kind == PageKind::PK_LargeStart ? Desc : Desc->LargeHead;
    if (!Head || !Head->allocBit(0))
      return;
    uintptr_t Off = Addr - reinterpret_cast<uintptr_t>(Head->PageStart);
    if (Off >= Head->LargeSize)
      return;
    Base = Head->PageStart;
    Size = Head->LargeSize;
    Atomic = Head->Atomic;
    BitsDesc = Head;
    BitSlot = 0;
    break;
  }
  }

  // Base-pointers-only mode: words found in the heap are only treated as
  // pointers when they address the first byte of the object.
  if (FromHeap && !Config.AllInteriorPointers &&
      Addr != reinterpret_cast<uintptr_t>(Base))
    return;

  bool Interior = Addr != reinterpret_cast<uintptr_t>(Base);
  ++CurEvent.PointerHits;
  if (Interior) {
    ++CurEvent.InteriorHits;
    if (Config.Profile)
      Config.Profile->recordInteriorHit(Base);
  }

  if (BitsDesc->markBit(BitSlot))
    return;
  BitsDesc->setMarkBit(BitSlot);
  ++CurEvent.MarkedObjects;
  if (Interior) {
    ++CurEvent.FalseRetentionCandidates;
    if (Config.Profile)
      Config.Profile->recordFalseRetention(Base);
  }
  if (!Atomic)
    MarkStack.push_back({Base, Size});
}

void Collector::markRange(const char *Begin, const char *End, bool FromHeap) {
  uintptr_t B = reinterpret_cast<uintptr_t>(Begin);
  uintptr_t E = reinterpret_cast<uintptr_t>(End);
  B = (B + sizeof(uintptr_t) - 1) & ~(sizeof(uintptr_t) - 1);
  for (; B + sizeof(uintptr_t) <= E; B += sizeof(uintptr_t)) {
    uintptr_t Word;
    std::memcpy(&Word, reinterpret_cast<const void *>(B), sizeof(Word));
    ++CurEvent.WordsScanned;
    markAddress(Word, FromHeap);
  }
}

void Collector::drainMarkStack() {
  while (!MarkStack.empty()) {
    MarkItem Item = MarkStack.back();
    MarkStack.pop_back();
    markRange(Item.Begin, Item.Begin + Item.Size, /*FromHeap=*/true);
  }
}

void Collector::scanMachineStack() {
  if (!StackBottom)
    return;
  // Spill callee-saved registers into a jmp_buf so register-resident
  // pointers are visible on the stack, then conservatively scan from the
  // current frame to the recorded stack bottom.
  std::jmp_buf Env;
  setjmp(Env);
  markRange(reinterpret_cast<const char *>(&Env),
            reinterpret_cast<const char *>(StackBottom),
            /*FromHeap=*/false);
}

void Collector::collect() {
  if (DisableDepth || InCollection)
    return;
  InCollection = true;

  CurEvent = CollectionEvent();
  CurEvent.Index = Stats.Collections;
  if (Config.Trace)
    Config.Trace->emit("gc", "collect.begin", CurEvent.Index,
                       Stats.HeapPages);
  uint64_t MarkStartNs = support::monotonicNowNs();

  for (PageDescriptor *Desc : AllPages)
    Desc->clearMarkBits();

  for (const RootRange &R : StaticRoots)
    markRange(R.Begin, R.End, /*FromHeap=*/false);
  MarkVisitor Visitor(*this);
  for (auto &Scanner : RootScanners)
    Scanner.second(Visitor);
  if (Config.ScanMachineStack)
    scanMachineStack();
  drainMarkStack();

  CurEvent.MarkNs = support::monotonicNowNs() - MarkStartNs;
  if (Config.Trace)
    Config.Trace->emit("gc", "mark.end", CurEvent.MarkNs,
                       CurEvent.MarkedObjects);
  uint64_t SweepStartNs = support::monotonicNowNs();

  sweep();

  CurEvent.SweepNs = support::monotonicNowNs() - SweepStartNs;
  CurEvent.FreedObjects = Stats.FreedObjectsLastGC;
  CurEvent.LiveBytes = Stats.LiveBytesAfterLastGC;
  if (Config.Trace) {
    Config.Trace->emit("gc", "sweep.end", CurEvent.SweepNs,
                       CurEvent.FreedObjects);
    Config.Trace->emit("gc", "collect.end", CurEvent.MarkNs + CurEvent.SweepNs,
                       CurEvent.LiveBytes);
  }

  if (Config.CollectDeadlineNs &&
      CurEvent.MarkNs + CurEvent.SweepNs > Config.CollectDeadlineNs) {
    ++Stats.GcDeadlineExceeded;
    if (Config.Trace)
      Config.Trace->emit("robust", "gc.deadline",
                         CurEvent.MarkNs + CurEvent.SweepNs,
                         Config.CollectDeadlineNs);
  }

  Stats.MarkNs += CurEvent.MarkNs;
  Stats.SweepNs += CurEvent.SweepNs;
  Stats.WordsScanned += CurEvent.WordsScanned;
  Stats.PointerHits += CurEvent.PointerHits;
  Stats.MarkedObjects += CurEvent.MarkedObjects;
  Stats.InteriorPointerHits += CurEvent.InteriorHits;
  Stats.FalseRetentionCandidates += CurEvent.FalseRetentionCandidates;
  if (Config.EventLimit) {
    if (Stats.Events.size() >= Config.EventLimit)
      Stats.Events.erase(Stats.Events.begin());
    Stats.Events.push_back(CurEvent);
  }

  ++Stats.Collections;
  BytesSinceGC = 0;
  AllocsSinceGC = 0;
  InCollection = false;

  if (Config.AuditEachCollection)
    auditHeap();
}

//===----------------------------------------------------------------------===//
// Sweeping
//===----------------------------------------------------------------------===//

void Collector::sweep() {
  for (FreeSlot *&List : FreeLists)
    List = nullptr;

  size_t LiveBytes = 0;
  size_t Freed = 0;

  CurEvent.PagesScanned = AllPages.size();
  for (PageDescriptor *Desc : AllPages) {
    switch (Desc->Kind) {
    case PageKind::PK_Free:
    case PageKind::PK_LargeCont:
      break;
    case PageKind::PK_Small: {
      unsigned Live = 0;
      for (unsigned Slot = 0; Slot < Desc->ObjCount; ++Slot) {
        if (Desc->allocBit(Slot) && !Desc->markBit(Slot)) {
          Desc->clearAllocBit(Slot);
          ++Freed;
          if (Config.Profile)
            Config.Profile->recordFree(
                Desc->PageStart + size_t(Slot) * Desc->ObjSize, CurEvent.Index);
          if (Config.PoisonOnFree)
            std::memset(Desc->PageStart + size_t(Slot) * Desc->ObjSize,
                        PoisonByte, Desc->ObjSize);
        }
        if (Desc->allocBit(Slot))
          ++Live;
      }
      if (Live == 0) {
        Desc->Kind = PageKind::PK_Free;
        Desc->NextFree = FreePageList;
        FreePageList = Desc;
        break;
      }
      LiveBytes += size_t(Live) * Desc->ObjSize;
      size_t Class = Desc->ObjSize / GranuleSize - 1;
      for (unsigned Slot = 0; Slot < Desc->ObjCount; ++Slot) {
        if (Desc->allocBit(Slot))
          continue;
        auto *Free = reinterpret_cast<FreeSlot *>(Desc->PageStart +
                                                  size_t(Slot) * Desc->ObjSize);
        Free->Next = FreeLists[Class];
        FreeLists[Class] = Free;
      }
      break;
    }
    case PageKind::PK_LargeStart: {
      if (!Desc->allocBit(0))
        break;
      if (Desc->markBit(0)) {
        LiveBytes += Desc->LargeSize;
        break;
      }
      ++Freed;
      if (Config.Profile)
        Config.Profile->recordFree(Desc->PageStart, CurEvent.Index);
      if (Config.PoisonOnFree)
        std::memset(Desc->PageStart, PoisonByte, Desc->LargeSize);
      Desc->clearAllocBit(0);
      size_t NPages = Desc->LargePages;
      for (size_t I = 0; I < NPages; ++I) {
        PageDescriptor *PD = Table.lookup(Desc->PageStart + I * PageSize);
        assert(PD && "large run page missing from table");
        PD->Kind = PageKind::PK_Free;
        PD->LargeHead = nullptr;
        PD->NextFree = FreePageList;
        FreePageList = PD;
      }
      break;
    }
    }
  }

  Stats.LiveBytesAfterLastGC = LiveBytes;
  Stats.FreedObjectsLastGC = Freed;

  if (Config.Profile)
    Config.Profile->snapshotAfterGc();
}

void Collector::deallocate(void *P) {
  void *Base = baseOf(P);
  if (!Base)
    return;
  if (Config.Profile)
    Config.Profile->recordFree(Base, Stats.Collections);
  PageDescriptor *Desc = Table.lookup(Base);
  if (Desc->Kind == PageKind::PK_Small) {
    unsigned Slot = static_cast<unsigned>(
        (static_cast<char *>(Base) - Desc->PageStart) / Desc->ObjSize);
    Desc->clearAllocBit(Slot);
    // Keep the audit's mark-implies-alloc invariant: a slot freed between
    // collections may still carry the previous cycle's mark bit.
    Desc->clearMarkBit(Slot);
    if (Config.PoisonOnFree)
      std::memset(Base, PoisonByte, Desc->ObjSize);
    size_t Class = Desc->ObjSize / GranuleSize - 1;
    auto *Free = reinterpret_cast<FreeSlot *>(Base);
    Free->Next = FreeLists[Class];
    FreeLists[Class] = Free;
    return;
  }
  if (Desc->Kind == PageKind::PK_LargeStart) {
    if (Config.PoisonOnFree)
      std::memset(Base, PoisonByte, Desc->LargeSize);
    Desc->clearAllocBit(0);
    Desc->clearMarkBit(0);
    size_t NPages = Desc->LargePages;
    for (size_t I = 0; I < NPages; ++I) {
      PageDescriptor *PD = Table.lookup(Desc->PageStart + I * PageSize);
      PD->Kind = PageKind::PK_Free;
      PD->LargeHead = nullptr;
      PD->NextFree = FreePageList;
      FreePageList = PD;
    }
  }
}

//===----------------------------------------------------------------------===//
// Heap integrity audit
//===----------------------------------------------------------------------===//

HeapAuditReport Collector::auditHeap() {
  HeapAuditReport R;
  char Buf[192];
  auto Violate = [&](const char *Fmt, auto... Args) {
    std::snprintf(Buf, sizeof(Buf), Fmt, Args...);
    ++R.ViolationCount;
    if (R.Violations.size() < HeapAuditReport::MaxRecorded)
      R.Violations.emplace_back(Buf);
    if (Config.Trace)
      Config.Trace->emit("gc", "audit.violation", R.ViolationCount, 0);
  };

  size_t FreePages = 0;
  for (PageDescriptor *D : AllPages) {
    ++R.PagesAudited;
    uintptr_t A = reinterpret_cast<uintptr_t>(D->PageStart);
    if (!D->PageStart || (A & (PageSize - 1)) != 0) {
      Violate("page %p: start misaligned", (void *)D->PageStart);
      continue;
    }
    if (Table.lookup(D->PageStart) != D) {
      Violate("page %p: page-table mapping does not point back to its "
              "descriptor",
              (void *)D->PageStart);
      continue;
    }

    switch (D->Kind) {
    case PageKind::PK_Free: {
      ++FreePages;
      bool Dirty = false;
      for (uint64_t W : D->AllocBits)
        Dirty |= W != 0;
      for (uint64_t W : D->MarkBits)
        Dirty |= W != 0;
      if (Dirty)
        Violate("free page %p: stale alloc/mark bits", (void *)D->PageStart);
      break;
    }
    case PageKind::PK_Small: {
      if (D->ObjSize == 0 || D->ObjSize % GranuleSize != 0 ||
          D->ObjSize > MaxSmallSize) {
        Violate("small page %p: bad object size %u", (void *)D->PageStart,
                unsigned(D->ObjSize));
        break;
      }
      if (D->ObjCount != PageSize / D->ObjSize) {
        Violate("small page %p: object count %u inconsistent with size %u",
                (void *)D->PageStart, unsigned(D->ObjCount),
                unsigned(D->ObjSize));
        break;
      }
      for (unsigned Slot = 0; Slot < MaxSlotsPerPage; ++Slot) {
        bool Alloc = D->allocBit(Slot);
        bool Mark = D->markBit(Slot);
        if (Slot >= D->ObjCount) {
          if (Alloc || Mark)
            Violate("small page %p: bit set beyond slot count (slot %u)",
                    (void *)D->PageStart, Slot);
          continue;
        }
        if (Mark && !Alloc)
          Violate("small page %p slot %u: marked but not allocated",
                  (void *)D->PageStart, Slot);
        if (Alloc) {
          ++R.ObjectsAudited;
          continue;
        }
        ++R.FreeSlotsAudited;
        // Freed (and never-allocated) slots must hold the poison pattern
        // beyond the free-list header; anything else means a client wrote
        // through a dangling pointer or the sweeper missed a slot.
        if (Config.PoisonOnFree) {
          const unsigned char *Bytes = reinterpret_cast<const unsigned char *>(
              D->PageStart + size_t(Slot) * D->ObjSize);
          for (size_t B = sizeof(FreeSlot); B < D->ObjSize; ++B) {
            if (Bytes[B] != PoisonByte) {
              Violate("small page %p slot %u: poison damaged at byte %zu "
                      "(0x%02x)",
                      (void *)D->PageStart, Slot, B, Bytes[B]);
              break;
            }
          }
        }
      }
      break;
    }
    case PageKind::PK_LargeStart: {
      ++R.LargeRunsAudited;
      if (!D->allocBit(0)) {
        Violate("large head %p: no alloc bit (freed run kept its head kind)",
                (void *)D->PageStart);
        break;
      }
      ++R.ObjectsAudited;
      if (D->LargePages == 0 ||
          D->LargeSize > size_t(D->LargePages) * PageSize ||
          D->LargeSize <= (size_t(D->LargePages) - 1) * PageSize) {
        Violate("large head %p: size %zu does not fit %u pages",
                (void *)D->PageStart, D->LargeSize, unsigned(D->LargePages));
        break;
      }
      for (size_t I = 1; I < D->LargePages; ++I) {
        PageDescriptor *PD = Table.lookup(D->PageStart + I * PageSize);
        if (!PD || PD->Kind != PageKind::PK_LargeCont || PD->LargeHead != D)
          Violate("large head %p: continuation page %zu not linked back",
                  (void *)D->PageStart, I);
      }
      break;
    }
    case PageKind::PK_LargeCont: {
      PageDescriptor *Head = D->LargeHead;
      if (!Head || Head->Kind != PageKind::PK_LargeStart) {
        Violate("large cont %p: dangling head pointer", (void *)D->PageStart);
        break;
      }
      uintptr_t Off = A - reinterpret_cast<uintptr_t>(Head->PageStart);
      if (Off == 0 || Off % PageSize != 0 ||
          Off / PageSize >= Head->LargePages)
        Violate("large cont %p: outside its head's run",
                (void *)D->PageStart);
      break;
    }
    }
  }

  // Free page list: every node PK_Free, and the list covers exactly the
  // PK_Free pages (no leaks, no duplicates, no cycles).
  size_t FreeListLen = 0;
  for (PageDescriptor *D = FreePageList; D; D = D->NextFree) {
    if (++FreeListLen > AllPages.size()) {
      Violate("free page list: cycle detected after %zu nodes", FreeListLen);
      break;
    }
    if (D->Kind != PageKind::PK_Free)
      Violate("free page list: node %p is not a free page",
              (void *)D->PageStart);
  }
  if (FreeListLen <= AllPages.size() && FreeListLen != FreePages)
    Violate("free page list: length %zu but %zu free pages exist",
            FreeListLen, FreePages);

  // Small-object free lists: membership, class, alignment, cycles.
  size_t SlotCap = AllPages.size() * (PageSize / GranuleSize) + 1;
  for (size_t Class = 0; Class < NumSizeClasses; ++Class) {
    size_t Expect = (Class + 1) * GranuleSize;
    size_t Len = 0;
    for (FreeSlot *S = FreeLists[Class]; S; S = S->Next) {
      if (++Len > SlotCap) {
        Violate("free list class %zu: cycle detected", Class);
        break;
      }
      PageDescriptor *PD = Table.lookup(S);
      if (!PD || PD->Kind != PageKind::PK_Small) {
        Violate("free list class %zu: slot %p not on a small page", Class,
                (void *)S);
        break;
      }
      if (PD->ObjSize != Expect) {
        Violate("free list class %zu: slot %p on page of size %u", Class,
                (void *)S, unsigned(PD->ObjSize));
        continue;
      }
      size_t Off = reinterpret_cast<char *>(S) - PD->PageStart;
      if (Off % PD->ObjSize != 0) {
        Violate("free list class %zu: slot %p misaligned in page", Class,
                (void *)S);
        continue;
      }
      if (PD->allocBit(static_cast<unsigned>(Off / PD->ObjSize)))
        Violate("free list class %zu: slot %p is allocated", Class,
                (void *)S);
    }
  }

  R.Ok = R.ViolationCount == 0;
  ++Stats.AuditsRun;
  Stats.AuditViolations += R.ViolationCount;
  if (Config.Trace)
    Config.Trace->emit("gc", "audit.end", R.ViolationCount, R.PagesAudited);
  return R;
}
