//===- rewrite/EditList.cpp -----------------------------------*- C++ -*-===//

#include "rewrite/EditList.h"

#include <algorithm>
#include <cassert>

using namespace gcsafe;
using namespace gcsafe::rewrite;

void EditList::insertBefore(uint32_t Pos, std::string Text) {
  Edits.push_back({Pos, 0, EditKind::InsertBefore,
                   static_cast<uint32_t>(Edits.size()), std::move(Text)});
}

void EditList::insertAfter(uint32_t Pos, std::string Text) {
  Edits.push_back({Pos, 0, EditKind::InsertAfter,
                   static_cast<uint32_t>(Edits.size()), std::move(Text)});
}

void EditList::remove(uint32_t Pos, uint32_t Len) {
  Edits.push_back({Pos, Len, EditKind::Replace,
                   static_cast<uint32_t>(Edits.size()), std::string()});
}

void EditList::replace(uint32_t Pos, uint32_t Len, std::string Text) {
  Edits.push_back({Pos, Len, EditKind::Replace,
                   static_cast<uint32_t>(Edits.size()), std::move(Text)});
}

std::vector<const EditList::Edit *> EditList::sortedEdits() const {
  std::vector<const Edit *> Sorted;
  Sorted.reserve(Edits.size());
  for (const Edit &E : Edits)
    Sorted.push_back(&E);
  std::sort(Sorted.begin(), Sorted.end(), [](const Edit *A, const Edit *B) {
    if (A->Pos != B->Pos)
      return A->Pos < B->Pos;
    if (A->Kind != B->Kind)
      return static_cast<int>(A->Kind) < static_cast<int>(B->Kind);
    if (A->Kind == EditKind::InsertAfter)
      return A->Seq > B->Seq; // innermost closer first
    return A->Seq < B->Seq;   // outermost opener first
  });
  return Sorted;
}

void EditList::forEachSorted(
    const std::function<void(uint32_t, uint32_t, const std::string &)> &Fn)
    const {
  for (const Edit *E : sortedEdits())
    Fn(E->Pos, E->DeleteLen, E->Text);
}

std::string EditList::apply(std::string_view Source) const {
  std::vector<const Edit *> Sorted = sortedEdits();

  std::string Out;
  Out.reserve(Source.size() + Source.size() / 4);
  size_t Cursor = 0;
  for (const Edit *E : Sorted) {
    assert(E->Pos <= Source.size() && "edit past end of source");
    assert(E->Pos >= Cursor && "overlapping edits");
    Out.append(Source.substr(Cursor, E->Pos - Cursor));
    Cursor = E->Pos;
    Out.append(E->Text);
    if (E->DeleteLen) {
      assert(Cursor + E->DeleteLen <= Source.size() && "deletion past end");
      Cursor += E->DeleteLen;
    }
  }
  Out.append(Source.substr(Cursor));
  return Out;
}
