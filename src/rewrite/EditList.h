//===- rewrite/EditList.h - Sorted textual edits ---------------*- C++ -*-===//
//
// Part of the gcsafe project, a reproduction of Boehm, "Simple
// Garbage-Collector-Safety" (PLDI 1996).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's preprocessor "generates a list of insertions and deletions,
/// sorted by character position in the original source string. After
/// parsing is complete, the insertions and deletions are applied to the
/// original source." EditList is that mechanism.
///
/// Nesting discipline: annotations wrap expression ranges, so several edits
/// can land on the same character position. At equal positions, closing
/// insertions (InsertAfter) are emitted before opening insertions
/// (InsertBefore); among closers the latest-recorded comes first (innermost
/// wrap closes first) and among openers the earliest-recorded comes first
/// (outermost wrap opens first). Recording wraps in pre-order therefore
/// yields correctly nested output.
///
//===----------------------------------------------------------------------===//

#ifndef GCSAFE_REWRITE_EDITLIST_H
#define GCSAFE_REWRITE_EDITLIST_H

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace gcsafe {
namespace rewrite {

class EditList {
public:
  /// Inserts \p Text before position \p Pos (an "opening" edit).
  void insertBefore(uint32_t Pos, std::string Text);

  /// Inserts \p Text after position \p Pos, i.e. at \p Pos treated as the
  /// end of a wrapped range (a "closing" edit).
  void insertAfter(uint32_t Pos, std::string Text);

  /// Deletes \p Len characters starting at \p Pos.
  void remove(uint32_t Pos, uint32_t Len);

  /// Replaces \p Len characters at \p Pos with \p Text.
  void replace(uint32_t Pos, uint32_t Len, std::string Text);

  /// Applies all edits to \p Source and returns the rewritten text.
  /// Overlapping deletions are a client bug and assert.
  std::string apply(std::string_view Source) const;

  size_t size() const { return Edits.size(); }
  bool empty() const { return Edits.empty(); }
  void clear() { Edits.clear(); }

  /// Visits every edit in application order (sorted by character position,
  /// with the same nesting discipline apply() uses) — the paper's "list of
  /// insertions and deletions, sorted by character position in the
  /// original source string", made inspectable.
  /// \p Fn receives (position, deleted-length, inserted-text).
  void forEachSorted(
      const std::function<void(uint32_t, uint32_t, const std::string &)> &Fn)
      const;

private:
  /// Order of application at equal positions: closing insertions, then
  /// opening insertions, then replacements (so a wrap's prefix precedes a
  /// replacement of text starting at the same offset).
  enum class EditKind : uint8_t { InsertAfter, InsertBefore, Replace };

  struct Edit {
    uint32_t Pos;
    uint32_t DeleteLen;
    EditKind Kind;
    uint32_t Seq;
    std::string Text;
  };

  std::vector<const Edit *> sortedEdits() const;

  std::vector<Edit> Edits;
};

} // namespace rewrite
} // namespace gcsafe

#endif // GCSAFE_REWRITE_EDITLIST_H
