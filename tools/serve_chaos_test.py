#!/usr/bin/env python3
"""Chaos/soak harness for gcsafe-serve (docs/ROBUSTNESS.md §8).

Hammers a live --isolate daemon with concurrent well-behaved clients
interleaved with hostile ones while the service-wide failpoints fire:

  serve_chaos_test.py --mode=chaos --serve-bin BIN --out FILE
  serve_chaos_test.py --mode=soak  --serve-bin BIN --out FILE

Phase 1 (flood): 8 concurrent clients submit compiles over a small set of
distinct cache keys while `serve.worker.crash` fires at 5% under
--isolate --isolate-retries=0 and `serve.queue.full` forces exactly one
admission shed. Hostile clients run at the same time: an oversized
request line, a garbage (non-JSON) line, a mid-request disconnect, and a
half-closed socket. Assertions:

  - the daemon never dies (zero daemon deaths is the headline invariant);
  - every compile response classifies as exactly one of: ok, "crashed"
    (exit 8, attributed to that one request), "overloaded" (exit 7, the
    forced shed, answered in bounded time), or "deadline" (exit 6, the
    deliberately-1ms-budget requests);
  - all ok responses sharing a cache_key are byte-identical modulo the
    "cached"/"id"/"request_id" fields — the warm/cold contract survives
    chaos;
  - the crashed count matches serve.isolate.crashes and crashed results
    were never cached (a later request on the same key succeeds);
  - telemetry (docs/OBSERVABILITY.md §8): every "crashed" response is
    covered by a flight-recorder dump in --flightrec-dir naming its
    request_id (100% crash-dump coverage), and the post-run metrics op
    reports an e2e histogram count equal to serve.requests — no request
    escapes the latency telemetry.

Phase 2 (attribution): a fresh daemon with serve.worker.crash@always and
no retries — every compile must come back typed "crashed" with the
signal named, deterministically, each with its flight-recorder dump, and
the daemon must survive all of them.

Phase 3 (drain): `drain` acks, queued work finishes, the daemon exits 0
and removes its socket — the graceful retirement path.

--mode=soak runs the same phases with a larger flood and a lower crash
rate; both modes are deterministic in their assertions and bounded in
wall time (ctest labels `chaos` and `soak`). All captured response lines
go to --out for gcsafe-serve-v1 schema validation.

--mode=restart is the durability battery (docs/SERVING.md §"Durability &
restart", ctest label `disk`): populate a --store-dir daemon cold,
SIGKILL it mid-write, fabricate a torn entry, restart on the same store
and require the scrub to quarantine the torn entry and every warm replay
to be byte-identical to its cold response; then rerun the same store
with all four store.* failpoints armed at high rates and require every
response ok, zero deviant replays, and a clean exit. The scrub report is
copied to --store-report for check_bench_json.py --store.
"""

import argparse
import json
import os
import socket
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path


def fail(message):
    print(f"serve_chaos_test: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


# A compile that can only end by deadline (or by an injected crash):
# the flood's 1ms-budget probes use it so "ok" is impossible for them.
SPIN_SOURCE = (
    "int main(void) {\n"
    "  long i;\n"
    "  i = 0;\n"
    "  while (1) { i = i + 1; }\n"
    "  return 0;\n"
    "}\n")


# Distinct cache keys come from distinct sources: each variant sums a
# different constant, so the preprocessed source (and the key) differs.
def make_source(variant):
    return (
        "struct node { struct node *next; long value; };\n"
        "int main(void) {\n"
        "  struct node *head; struct node *n; long i; long s;\n"
        "  head = 0; s = 0;\n"
        "  for (i = 0; i < 24; i++) {\n"
        "    n = (struct node *)gc_malloc(sizeof(struct node));\n"
        f"    n->value = i * {3 + variant};\n"
        "    n->next = head; head = n;\n"
        "  }\n"
        "  while (head) { s = s + head->value; head = head->next; }\n"
        "  print_int(s); print_char(10);\n"
        "  return 0;\n"
        "}\n")


class Daemon:
    """One gcsafe-serve --socket instance under test."""

    def __init__(self, serve_bin, tmp, name, extra_flags):
        self.path = os.path.join(tmp, name + ".sock")
        self.proc = subprocess.Popen(
            [serve_bin, f"--socket={self.path}"] + extra_flags,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)

    def alive(self):
        return self.proc.poll() is None

    def kill(self):
        if self.proc.poll() is None:
            self.proc.kill()
            self.proc.wait()

    def connect(self, timeout=30.0):
        """Connect with bounded exponential backoff: the daemon creates
        its socket file and *then* starts accepting, so a client can race
        either step (missing file or ECONNREFUSED). A fixed sleep flakes
        on slow machines and wastes time on fast ones; backoff starts at
        10ms, doubles to a 0.5s cap, and a daemon that exits while we
        wait fails immediately."""
        deadline = time.monotonic() + timeout
        delay = 0.01
        while True:
            conn = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            conn.settimeout(60)
            try:
                conn.connect(self.path)
                return conn
            except (FileNotFoundError, ConnectionRefusedError) as exc:
                conn.close()
                if self.proc.poll() is not None:
                    fail(f"daemon exited {self.proc.returncode} before "
                         "accepting connections")
                if time.monotonic() > deadline:
                    self.kill()
                    fail(f"could not connect to {self.path} within "
                         f"{timeout:.0f}s ({exc})")
                time.sleep(delay)
                delay = min(delay * 2, 0.5)


def read_line(conn):
    buf = b""
    while not buf.endswith(b"\n"):
        chunk = conn.recv(65536)
        if not chunk:
            return None
        buf += chunk
    return buf.decode().rstrip("\n")


def ask(conn, request):
    conn.sendall((json.dumps(request) + "\n").encode())
    line = read_line(conn)
    if line is None:
        fail(f"connection closed without answering {request.get('id')}")
    return line


def ask_fresh(daemon, request):
    with daemon.connect() as conn:
        return ask(conn, request)


def compile_request(rid, source, deadline_ms=0):
    # The protocol id doubles as the trace request_id, so every crash can
    # be attributed to a flight-recorder dump named after the victim.
    req = {"schema": "gcsafe-serve-v1", "op": "compile", "id": rid,
           "request_id": rid, "name": rid, "source": source,
           "mode": "safepost", "run": True}
    if deadline_ms:
        req["deadline_ms"] = deadline_ms
    return req


def flood_client(daemon, client, rounds, sources, lines, errors):
    """One well-behaved client: its own connection, sequential requests
    across every cache key, plus one deliberately-expired deadline."""
    try:
        with daemon.connect() as conn:
            for r in range(rounds):
                for k, source in enumerate(sources):
                    rid = f"c{client}-r{r}-k{k}"
                    lines.append(ask(conn, compile_request(rid, source)))
            lines.append(ask(conn, compile_request(
                f"c{client}-deadline", SPIN_SOURCE, deadline_ms=1)))
    except Exception as exc:  # noqa: BLE001 - any client error fails the test
        errors.append(f"client {client}: {exc!r}")


def hostile_clients(daemon, errors):
    """The abuse battery. None of these may hurt the daemon; responses
    (when the protocol owes one) are not captured for schema checking —
    hostility is about the daemon surviving, not the transcript."""
    try:
        # Oversized request line: answered with a protocol error, then
        # the daemon hangs up.
        with daemon.connect() as conn:
            conn.sendall(b'{"op":"compile","source":"' + b"x" * 70000 +
                         b'"}\n')
            line = read_line(conn)
            if line is not None:
                resp = json.loads(line)
                if resp.get("ok") is not False:
                    errors.append(f"oversized request not rejected: {resp}")
        # Garbage line: a typed error response, connection still usable.
        with daemon.connect() as conn:
            conn.sendall(b"this is not json\n")
            line = read_line(conn)
            if line is None:
                errors.append("no error response to a garbage line")
            else:
                resp = json.loads(line)
                if resp.get("op") != "error" or resp.get("ok") is not False:
                    errors.append(f"garbage line not typed error: {resp}")
        # Mid-request disconnect: half a JSON document, then gone.
        with daemon.connect() as conn:
            conn.sendall(b'{"op":"compile","source":"int ma')
        # Half-closed socket: the read timeout must reap it.
        with daemon.connect() as conn:
            conn.sendall(b'{"op":"ping","id":"half"}\n')
            conn.shutdown(socket.SHUT_WR)
            read_line(conn)  # drain whatever arrives before EOF
    except Exception as exc:  # noqa: BLE001
        errors.append(f"hostile client: {exc!r}")


def classify(resp):
    if resp.get("op") != "compile":
        fail(f"unexpected op in flood transcript: {resp}")
    status = resp.get("status", "")
    if resp.get("ok"):
        if status:
            fail(f"ok response with a status token: {resp}")
        return "ok"
    if status == "crashed":
        if resp.get("exit_code") != 8:
            fail(f"crashed response without exit code 8: {resp}")
        if "signal" not in resp.get("error", ""):
            fail(f"crash not attributed to a signal: {resp}")
        return "crashed"
    if status == "overloaded":
        if resp.get("exit_code") != 7:
            fail(f"overloaded response without exit code 7: {resp}")
        return "overloaded"
    if status == "deadline":
        if resp.get("exit_code") != 6:
            fail(f"deadline response without exit code 6: {resp}")
        return "deadline"
    fail(f"unclassifiable failure in flood transcript: {resp}")


def check_byte_identity(responses):
    """Every warm (cached) response must replay some cold payload of its
    key verbatim, modulo the fields that legitimately differ per serving.
    Concurrent cold misses on one key may each produce their own payload
    (reports carry timings), so the contract under chaos is replay
    fidelity, not a single payload per key."""
    def canon(resp):
        return json.dumps(
            {k: v for k, v in resp.items()
             if k not in ("cached", "id", "request_id")},
            sort_keys=True)
    cold, warm = {}, {}
    for resp in responses:
        bucket = warm if resp.get("cached") else cold
        bucket.setdefault(resp["cache_key"], set()).add(canon(resp))
    for key, payloads in warm.items():
        fabricated = payloads - cold.get(key, set())
        if fabricated:
            fail(f"{len(fabricated)} warm payloads for cache key {key} "
                 "match no cold payload — a cached response was not a "
                 "verbatim replay")
    return len(set(cold) | set(warm))


def check_crash_dump(flight_dir, resp):
    """Every "crashed" response must be accompanied by a flight-recorder
    dump naming the victim (docs/OBSERVABILITY.md §8)."""
    rid = resp.get("request_id")
    if not rid:
        fail(f"crashed response without a request_id: {resp}")
    if rid != resp.get("id"):
        fail(f"crashed response echoes request_id {rid!r}, "
             f"sent {resp['id']!r}")
    path = os.path.join(flight_dir, f"flightrec-{rid}.json")
    if not os.path.exists(path):
        fail(f"no flight-recorder dump for crashed request {rid!r} "
             f"at {path}")
    try:
        doc = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        fail(f"flight dump {path} is not JSON: {exc}")
    if doc.get("schema") != "gcsafe-flightrec-v1":
        fail(f"flight dump {path} has schema {doc.get('schema')!r}")
    if doc.get("reason") != "crash":
        fail(f"flight dump {path} has reason {doc.get('reason')!r}, "
             "expected 'crash'")
    if doc.get("request_id") != rid:
        fail(f"flight dump {path} names {doc.get('request_id')!r}, "
             f"expected {rid!r}")
    if not doc.get("events"):
        fail(f"flight dump {path} carries no events")


def sched_flags(args):
    """--sched-seed passthrough: arm the daemon's schedule fuzzer."""
    return ([f"--sched-seed={args.sched_seed}"]
            if getattr(args, "sched_seed", 0) else [])


def run_flood_phase(args, tmp, lines):
    clients = 8
    rounds = 6 if args.mode == "soak" else 2
    crash_p = "0.02" if args.mode == "soak" else "0.05"
    sources = [make_source(v) for v in range(4)]
    flight_dir = os.path.join(tmp, "flight-flood")
    os.makedirs(flight_dir, exist_ok=True)
    daemon = Daemon(args.serve_bin, tmp, "flood", [
        "--workers=4", "--isolate", "--isolate-retries=0",
        "--isolate-timeout=20000", "--queue-max=64",
        "--read-timeout=5000", "--write-timeout=5000",
        "--max-request=65536", f"--flightrec-dir={flight_dir}",
        f"--fail-inject=13:serve.worker.crash@p{crash_p},"
        "serve.queue.full@n3x1",
    ] + sched_flags(args))
    try:
        health = json.loads(ask_fresh(daemon, {"op": "health", "id": "h0"}))
        if not (health["ok"] and health["ready"] and health["isolate"]):
            fail(f"daemon not ready/isolated before the flood: {health}")
        lines.append(json.dumps(health))

        flood, errors, threads = [], [], []
        for c in range(clients):
            threads.append(threading.Thread(
                target=flood_client,
                args=(daemon, c, rounds, sources, flood, errors)))
        threads.append(threading.Thread(
            target=hostile_clients, args=(daemon, errors)))
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=300)
            if t.is_alive():
                fail("a flood client is still blocked after 300s")
        if errors:
            fail("; ".join(errors))
        if not daemon.alive():
            fail(f"daemon died during the flood "
                 f"(exit {daemon.proc.returncode})")

        responses = [json.loads(l) for l in flood]
        lines.extend(flood)
        counts = {"ok": 0, "crashed": 0, "overloaded": 0, "deadline": 0}
        for resp in responses:
            counts[classify(resp)] += 1
        expected = clients * rounds * len(sources) + clients
        if sum(counts.values()) != expected:
            fail(f"{sum(counts.values())} responses for {expected} requests")
        if counts["ok"] == 0:
            fail("no request succeeded under chaos")
        # serve.queue.full@n3x1 forces exactly one admission shed.
        if counts["overloaded"] != 1:
            fail(f"{counts['overloaded']} overloaded responses, expected "
                 "exactly 1 (the forced queue-full shed)")
        # The 1ms-budget spin probes can end by deadline, by an injected
        # crash, or (at most once) by the forced shed — never by ok.
        for resp in responses:
            if resp["id"].endswith("-deadline") and resp.get("ok"):
                fail(f"a 1ms-budget request returned ok: {resp}")
        if counts["deadline"] < 1:
            fail("no deadline response from the 1ms-budget probes")
        keys = check_byte_identity(
            [r for r in responses if r.get("ok")])
        if keys != len(sources):
            fail(f"{keys} cache-key groups for {len(sources)} sources")

        stats_line = ask_fresh(
            daemon, {"schema": "gcsafe-serve-v1", "op": "stats",
                     "id": "st0"})
        lines.append(stats_line)
        serve = json.loads(stats_line)["serve"]
        if serve["isolate"]["crashes"] != counts["crashed"]:
            fail(f"stats count {serve['isolate']['crashes']} crashes but "
                 f"{counts['crashed']} crashed responses — a crash was "
                 "not attributed to exactly one request")
        if serve["queue"]["shed"] != 1:
            fail(f"serve.queue.shed = {serve['queue']['shed']}, expected 1")

        # Telemetry phase (docs/OBSERVABILITY.md §8): every crashed
        # response is covered by a flight-recorder dump naming its
        # request, and the e2e latency histogram accounts for exactly
        # the requests the service admitted (sheds never start a span).
        for resp in responses:
            if resp.get("status") == "crashed":
                check_crash_dump(flight_dir, resp)
        metrics_line = ask_fresh(
            daemon, {"schema": "gcsafe-serve-v1", "op": "metrics",
                     "id": "m0"})
        lines.append(metrics_line)
        snap = json.loads(metrics_line)["metrics"]
        if snap.get("schema") != "gcsafe-metrics-v1":
            fail(f"bad metrics snapshot after the flood: {snap}")
        e2e = snap["stages"]["e2e"]["count"]
        if e2e != serve["requests"]:
            fail(f"e2e histogram count {e2e} != serve.requests "
                 f"{serve['requests']} — a request escaped telemetry")

        # Phase 3 rides on the flood daemon: drain and a clean exit.
        drain_line = ask_fresh(daemon, {"op": "drain", "id": "d0"})
        lines.append(drain_line)
        if not json.loads(drain_line)["ok"]:
            fail(f"drain not acked: {drain_line}")
        code = daemon.proc.wait(timeout=60)
        if code != 0:
            fail(f"daemon exited {code} after drain, expected 0")
        if os.path.exists(daemon.path):
            fail("daemon left its socket behind after drain")
        return counts
    finally:
        daemon.kill()


def run_attribution_phase(args, tmp, lines):
    flight_dir = os.path.join(tmp, "flight-attr")
    os.makedirs(flight_dir, exist_ok=True)
    daemon = Daemon(args.serve_bin, tmp, "attr", [
        "--workers=2", "--isolate", "--isolate-retries=0",
        f"--flightrec-dir={flight_dir}",
        "--fail-inject=7:serve.worker.crash@always",
    ] + sched_flags(args))
    try:
        with daemon.connect() as conn:
            for n in range(3):
                line = ask(conn, compile_request(f"attr-{n}",
                                                 make_source(n)))
                lines.append(line)
                resp = json.loads(line)
                if resp.get("status") != "crashed" or resp["exit_code"] != 8:
                    fail(f"crash-rate-1.0 compile not typed crashed: {resp}")
                if "signal" not in resp.get("error", ""):
                    fail(f"crash without the signal named: {resp}")
                if resp.get("cached"):
                    fail(f"a crashed result claims cached=true: {resp}")
                check_crash_dump(flight_dir, resp)
        if not daemon.alive():
            fail("daemon died in the crash-rate-1.0 phase")
        line = ask_fresh(daemon, {"op": "shutdown", "id": "bye"})
        lines.append(line)
        code = daemon.proc.wait(timeout=60)
        if code != 0:
            fail(f"attribution daemon exited {code}, expected 0")
    finally:
        daemon.kill()


def canon_response(resp):
    """A response with the legitimately-per-serving fields stripped: the
    byte-identity comparand shared by every durability assertion."""
    return json.dumps(
        {k: v for k, v in resp.items()
         if k not in ("cached", "id", "request_id")},
        sort_keys=True)


def run_restart_phase(args, tmp, lines):
    """Durability battery (docs/SERVING.md §"Durability & restart").

    Phase A: a --store-dir daemon compiles a set of sources cold, then is
    SIGKILLed with one more compile in flight — the store can be mid-write
    when the process dies. A torn entry is also fabricated directly.

    Phase B: a new daemon on the same store dir. Its startup scrub must
    quarantine the torn entry (reported in scrub.json, renamed aside, and
    counted), and every replayed compile must be served cached and
    byte-identical to its phase-A cold response.

    Phase C: a third daemon on the same store with all four store.*
    failpoints armed at high rates. Every response must still be ok, no
    cached response may ever deviate from a cold original (a checksum-
    failing payload must never be served), and the daemon must exit 0.
    """
    store_dir = os.path.join(tmp, "store")
    store_root = os.path.join(store_dir, "gcsafe-store-v1")
    sources = [make_source(v) for v in range(3)]
    cold = {}

    # --- Phase A: populate cold, then SIGKILL mid-flight. ---
    daemon = Daemon(args.serve_bin, tmp, "restart-cold", [
        "--workers=2", f"--store-dir={store_dir}"] + sched_flags(args))
    try:
        with daemon.connect() as conn:
            for k, source in enumerate(sources):
                line = ask(conn, compile_request(f"cold-{k}", source))
                lines.append(line)
                resp = json.loads(line)
                if not resp.get("ok") or resp.get("cached"):
                    fail(f"phase-A cold compile not ok/uncached: {resp}")
                cold[resp["cache_key"]] = canon_response(resp)
        with daemon.connect() as conn:
            conn.sendall((json.dumps(compile_request(
                "kill-victim", make_source(9))) + "\n").encode())
            time.sleep(0.05)
            daemon.proc.kill()  # SIGKILL, possibly mid-store-write
            daemon.proc.wait()
    finally:
        daemon.kill()

    # A guaranteed-torn entry alongside whatever the kill left behind: a
    # header that ends mid-line, under a plausible 32-hex key.
    torn_key = "deadbeef" * 4
    torn_name = torn_key + ".entry"
    entries_dir = os.path.join(store_root, "entries")
    with open(os.path.join(entries_dir, torn_name), "wb") as f:
        f.write(b"GCSTORE\nv=1\nkey=" + torn_key.encode())

    # --- Phase B: restart, scrub, warm replay fidelity. ---
    daemon = Daemon(args.serve_bin, tmp, "restart-warm", [
        "--workers=2", f"--store-dir={store_dir}"] + sched_flags(args))
    try:
        warm_lines = []
        with daemon.connect() as conn:
            for k, source in enumerate(sources):
                warm_lines.append(ask(conn, compile_request(f"warm-{k}",
                                                            source)))
        lines.extend(warm_lines)
        for line in warm_lines:
            resp = json.loads(line)
            if not resp.get("ok") or not resp.get("cached"):
                fail(f"warm-restart compile not replayed from the store: "
                     f"{resp}")
            if cold.get(resp["cache_key"]) != canon_response(resp):
                fail(f"warm replay for {resp['cache_key']} is not "
                     "byte-identical to its cold response")

        scrub_path = os.path.join(store_root, "scrub.json")
        scrub = json.loads(Path(scrub_path).read_text())
        if scrub.get("schema") != "gcsafe-store-v1":
            fail(f"scrub report schema {scrub.get('schema')!r}")
        if scrub["scanned"] != scrub["valid"] + scrub["quarantined"]:
            fail(f"scrub report does not balance: {scrub}")
        if scrub["quarantined"] < 1:
            fail("the scrub quarantined nothing despite a torn entry")
        listed = {e["file"]: e for e in scrub["entries"]}
        if listed.get(torn_name, {}).get("status") != "quarantined":
            fail(f"torn entry {torn_name} not quarantined by the scrub: "
                 f"{listed.get(torn_name)}")
        qdir = os.path.join(store_root, "quarantine")
        if not any(q.startswith(torn_name) for q in os.listdir(qdir)):
            fail("torn entry was not renamed into quarantine/")
        if os.path.exists(os.path.join(entries_dir, torn_name)):
            fail("torn entry still present in entries/ after the scrub")
        if args.store_report:
            Path(args.store_report).write_text(json.dumps(scrub, indent=2)
                                               + "\n")

        stats_line = ask_fresh(daemon, {"schema": "gcsafe-serve-v1",
                                        "op": "stats", "id": "st-restart"})
        lines.append(stats_line)
        store_stats = json.loads(stats_line)["serve"]["store"]
        if store_stats["hits"] < len(sources):
            fail(f"serve.store.hits = {store_stats['hits']}, expected >= "
                 f"{len(sources)} warm-restart replays")
        if store_stats["quarantined"] < 1:
            fail(f"serve.store.quarantined = "
                 f"{store_stats['quarantined']}, expected >= 1")

        lines.append(ask_fresh(daemon, {"schema": "gcsafe-serve-v1",
                                        "op": "shutdown",
                                        "id": "bye-warm"}))
        code = daemon.proc.wait(timeout=60)
        if code != 0:
            fail(f"warm-restart daemon exited {code}, expected 0")
    finally:
        daemon.kill()

    # --- Phase C: the same store under all four store.* failpoints. ---
    daemon = Daemon(args.serve_bin, tmp, "restart-fault", [
        "--workers=2", f"--store-dir={store_dir}",
        "--fail-inject=21:store.write.short@p0.5,store.write.enospc@p0.3,"
        "store.read.eio@p0.3,store.read.corrupt@p0.5",
    ] + sched_flags(args))
    try:
        ok_responses = []
        with daemon.connect() as conn:
            for r in range(7):
                for k, source in enumerate(sources):
                    line = ask(conn, compile_request(f"fault-r{r}-k{k}",
                                                     source))
                    lines.append(line)
                    resp = json.loads(line)
                    if not resp.get("ok"):
                        fail(f"response not ok under store failpoints: "
                             f"{resp}")
                    ok_responses.append(resp)
        # Replay fidelity under injected corruption: every cached
        # response must verbatim-match some cold payload of its key —
        # phase A's originals count as colds. A checksum-failing store
        # entry must surface as a recompile, never as a deviant replay.
        for payload in cold.values():
            ok_responses.append(json.loads(payload))
        check_byte_identity(ok_responses)
        if not daemon.alive():
            fail(f"daemon died under store failpoints "
                 f"(exit {daemon.proc.returncode})")
        lines.append(ask_fresh(daemon, {"schema": "gcsafe-serve-v1",
                                        "op": "shutdown",
                                        "id": "bye-fault"}))
        code = daemon.proc.wait(timeout=60)
        if code != 0:
            fail(f"failpoint daemon exited {code}, expected 0 — store "
                 "faults must never be fatal")
    finally:
        daemon.kill()


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--mode", choices=("chaos", "soak", "restart"),
                        default="chaos")
    parser.add_argument("--serve-bin", required=True)
    parser.add_argument("--out", required=True,
                        help="captured response lines, for "
                             "check_bench_json.py --serve")
    parser.add_argument("--store-report", default="",
                        help="restart mode: copy the scrub report here "
                             "for check_bench_json.py --store")
    parser.add_argument("--sched-seed", type=int, default=0,
                        help="arm the daemons' deterministic schedule "
                             "fuzzer (gcsafe-serve --sched-seed=N): the "
                             "whole chaos battery then runs under seeded "
                             "forced preemptions, and a failure replays "
                             "from the seed alone")
    args = parser.parse_args()

    lines = []
    with tempfile.TemporaryDirectory(prefix="gcsafe-", dir="/tmp") as tmp:
        if args.mode == "restart":
            run_restart_phase(args, tmp, lines)
            Path(args.out).write_text("".join(l + "\n" for l in lines))
            print("serve_chaos_test: ok (restart: SIGKILL mid-write "
                  "survived, torn entry quarantined, warm replays "
                  "byte-identical, store failpoints non-fatal, "
                  "3 daemons, 0 unplanned deaths)")
            return 0
        counts = run_flood_phase(args, tmp, lines)
        run_attribution_phase(args, tmp, lines)
    Path(args.out).write_text("".join(l + "\n" for l in lines))
    print(f"serve_chaos_test: ok ({args.mode}: {counts['ok']} ok, "
          f"{counts['crashed']} crashed+attributed+dumped, "
          f"{counts['overloaded']} shed, {counts['deadline']} deadline, "
          "e2e histogram complete, 2 daemons, 0 daemon deaths)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
