//===- tools/safety_mutate.cpp - Verifier mutation self-test -------------===//
//
// Part of the gcsafe project, a reproduction of Boehm, "Simple
// Garbage-Collector-Safety" (PLDI 1996).
//
// The static safety verifier's adversarial self-test (docs/ANALYSIS.md):
// compiles a C file, asserts the verifier passes the clean module, then
// enumerates every KEEP_LIVE/kill corruption Mutate.h defines and asserts
// the verifier flags each one.
//
//   safety_mutate [--mode=o2|safe|safepost|debug|checked|all] [-v] file.c
//
// Exit status: 0 all mutants caught and clean module verified;
//              1 tool error (bad usage, unreadable input, compile failure);
//              3 the *clean* module produced safety diagnostics;
//              4 at least one mutant escaped the verifier.
//
//===----------------------------------------------------------------------===//

#include "analysis/Mutate.h"
#include "analysis/SafetyVerifier.h"
#include "driver/Pipeline.h"
#include "support/ExitCodes.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace gcsafe;

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: safety_mutate [--mode=o2|safe|safepost|debug|checked|"
               "all] [-v] <file.c>\n");
}

/// Runs the clean-verify + mutate-and-verify cycle for one mode.
/// Returns ExitSuccess / ExitSafetyViolation / ExitMutantEscape per the
/// support/ExitCodes.h contract (never ExitError; compile failures are the
/// caller's).
int runMode(driver::Compilation &Comp, driver::CompileMode Mode,
            bool Verbose) {
  driver::CompileOptions CO;
  CO.Mode = Mode;
  driver::CompileResult CR = Comp.compile(CO);
  if (!CR.Ok) {
    std::fprintf(stderr, "safety_mutate: compile failed in mode %s:\n%s",
                 driver::compileModeName(Mode), CR.Errors.c_str());
    return support::ExitError;
  }

  analysis::SafetyVerifyOptions VO; // final check, kill audit on
  std::vector<analysis::SafetyDiag> CleanDiags;
  if (!analysis::verifyModuleSafety(CR.Module, VO, CleanDiags)) {
    for (const analysis::SafetyDiag &D : CleanDiags)
      std::fprintf(stderr, "safety_mutate: clean module [%s]: %s\n",
                   driver::compileModeName(Mode),
                   analysis::formatSafetyDiag(D).c_str());
    return support::ExitSafetyViolation;
  }

  std::vector<analysis::Mutation> Mutations =
      analysis::enumerateMutations(CR.Module);
  unsigned Escaped = 0;
  for (const analysis::Mutation &Mu : Mutations) {
    ir::Module Mutant = CR.Module;
    if (!analysis::applyMutation(Mutant, Mu)) {
      std::fprintf(stderr, "safety_mutate: stale mutation site: %s\n",
                   Mu.Description.c_str());
      return support::ExitError;
    }
    std::vector<analysis::SafetyDiag> Diags;
    analysis::verifyModuleSafety(Mutant, VO, Diags);
    if (Diags.empty()) {
      ++Escaped;
      std::fprintf(stderr, "safety_mutate: ESCAPED [%s] %s: %s\n",
                   driver::compileModeName(Mode),
                   analysis::mutationKindName(Mu.Kind),
                   Mu.Description.c_str());
    } else if (Verbose) {
      std::fprintf(stderr, "safety_mutate: caught [%s] %s: %s\n",
                   driver::compileModeName(Mode),
                   analysis::mutationKindName(Mu.Kind),
                   analysis::formatSafetyDiag(Diags.front()).c_str());
    }
  }

  std::printf("[%s] clean verified; %zu mutant(s), %u escaped\n",
              driver::compileModeName(Mode), Mutations.size(), Escaped);
  return Escaped ? support::ExitMutantEscape : support::ExitSuccess;
}

} // namespace

int main(int argc, char **argv) {
  std::string ModeArg = "all";
  std::string InputPath;
  bool Verbose = false;

  for (int I = 1; I < argc; ++I) {
    const char *Arg = argv[I];
    if (!std::strncmp(Arg, "--mode=", 7)) {
      ModeArg = Arg + 7;
    } else if (!std::strcmp(Arg, "-v") || !std::strcmp(Arg, "--verbose")) {
      Verbose = true;
    } else if (!std::strcmp(Arg, "--help") || !std::strcmp(Arg, "-h")) {
      usage();
      return support::ExitSuccess;
    } else if (Arg[0] == '-' && Arg[1] != '\0') {
      usage();
      return support::ExitUsage;
    } else {
      InputPath = Arg;
    }
  }
  if (InputPath.empty()) {
    usage();
    return support::ExitUsage;
  }

  std::vector<driver::CompileMode> Modes;
  if (ModeArg == "all") {
    Modes = {driver::CompileMode::O2, driver::CompileMode::O2Safe,
             driver::CompileMode::O2SafePost, driver::CompileMode::Debug,
             driver::CompileMode::DebugChecked};
  } else if (ModeArg == "o2") {
    Modes = {driver::CompileMode::O2};
  } else if (ModeArg == "safe") {
    Modes = {driver::CompileMode::O2Safe};
  } else if (ModeArg == "safepost") {
    Modes = {driver::CompileMode::O2SafePost};
  } else if (ModeArg == "debug") {
    Modes = {driver::CompileMode::Debug};
  } else if (ModeArg == "checked") {
    Modes = {driver::CompileMode::DebugChecked};
  } else {
    std::fprintf(stderr, "safety_mutate: unknown mode '%s'\n",
                 ModeArg.c_str());
    return support::ExitUsage;
  }

  std::ifstream In(InputPath);
  if (!In) {
    std::fprintf(stderr, "safety_mutate: cannot open '%s'\n",
                 InputPath.c_str());
    return support::ExitError;
  }
  std::stringstream SS;
  SS << In.rdbuf();

  driver::Compilation Comp(InputPath, SS.str());
  if (!Comp.parse()) {
    std::fputs(Comp.renderedDiagnostics().c_str(), stderr);
    return support::ExitError;
  }

  int Worst = support::ExitSuccess;
  for (driver::CompileMode Mode : Modes) {
    int RC = runMode(Comp, Mode, Verbose);
    if (RC == support::ExitError)
      return support::ExitError;
    if (RC > Worst)
      Worst = RC;
  }
  return Worst;
}
