#!/usr/bin/env python3
"""Check relative links and heading anchors across the markdown docs.

  check_docs_links.py FILE.md [FILE.md ...]

For every inline markdown link in the given files:

  - external targets (http/https/mailto) are skipped;
  - a relative path target must exist on disk (resolved against the
    linking file's directory);
  - a `#fragment` — on its own or after a .md path — must name a real
    heading anchor in the target file, using GitHub's slug rules
    (lowercase, punctuation stripped, spaces to hyphens, duplicate slugs
    suffixed -1, -2, ...).

Links inside fenced code blocks and inline code spans are ignored. All
problems are listed; any problem exits 1. Run by `ctest -L docs`, so a
renamed doc, a deleted section, or a typoed anchor breaks the build
instead of shipping a dead link.
"""

import re
import string
import sys
from pathlib import Path

LINK_RE = re.compile(r"(?<!\!)\[(?P<text>[^\]]*)\]\((?P<target>[^)\s]+)\)")
FENCE_RE = re.compile(r"^\s*(```|~~~)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(?P<text>.+?)\s*#*\s*$")
CODE_SPAN_RE = re.compile(r"`[^`]*`")
EXTERNAL_PREFIXES = ("http://", "https://", "mailto:", "ftp://")

# GitHub slugger: keep word characters, spaces and hyphens; drop the rest.
_SLUG_KEEP = set(string.ascii_lowercase + string.digits + " -_")


def slugify(text):
    text = CODE_SPAN_RE.sub(lambda m: m.group(0)[1:-1], text)
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # linkified heading
    text = text.lower()
    text = "".join(c for c in text if c in _SLUG_KEEP)
    return text.replace(" ", "-")


def strip_code(lines):
    """Lines with fenced blocks blanked out (links in examples don't
    count) and inline code spans removed."""
    out = []
    in_fence = False
    for line in lines:
        if FENCE_RE.match(line):
            in_fence = not in_fence
            out.append("")
            continue
        out.append("" if in_fence else CODE_SPAN_RE.sub("", line))
    return out


def collect_anchors(path, cache):
    if path in cache:
        return cache[path]
    anchors = set()
    counts = {}
    try:
        lines = path.read_text().splitlines()
    except OSError:
        cache[path] = anchors
        return anchors
    in_fence = False
    for line in lines:
        if FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        m = HEADING_RE.match(line)
        if not m:
            continue
        slug = slugify(m.group("text"))
        n = counts.get(slug, 0)
        counts[slug] = n + 1
        anchors.add(slug if n == 0 else f"{slug}-{n}")
    # Explicit HTML anchors also count.
    text = path.read_text()
    for m in re.finditer(r'<a\s+(?:name|id)="([^"]+)"', text):
        anchors.add(m.group(1))
    cache[path] = anchors
    return anchors


def check_file(path, anchor_cache):
    problems = []
    lines = path.read_text().splitlines()
    for lineno, line in enumerate(strip_code(lines), 1):
        for m in LINK_RE.finditer(line):
            target = m.group("target")
            if target.startswith(EXTERNAL_PREFIXES):
                continue
            ref, _, fragment = target.partition("#")
            if ref:
                dest = (path.parent / ref).resolve()
                if not dest.exists():
                    problems.append(f"{path}:{lineno}: dead link "
                                    f"'{target}' ({ref} does not exist)")
                    continue
            else:
                dest = path.resolve()
            if fragment:
                if dest.is_dir() or dest.suffix.lower() != ".md":
                    continue  # anchors only checked in markdown targets
                anchors = collect_anchors(dest, anchor_cache)
                if fragment not in anchors:
                    problems.append(
                        f"{path}:{lineno}: missing anchor '#{fragment}' "
                        f"in {dest.name} (have: "
                        f"{', '.join(sorted(anchors)) or 'none'})")
    return problems


def main():
    files = [Path(a) for a in sys.argv[1:]]
    if not files:
        print(f"usage: {sys.argv[0]} FILE.md [FILE.md ...]",
              file=sys.stderr)
        return 2
    problems = []
    anchor_cache = {}
    for path in files:
        if not path.exists():
            problems.append(f"{path}: no such file")
            continue
        problems.extend(check_file(path, anchor_cache))
    for problem in problems:
        print(f"error: {problem}", file=sys.stderr)
    if not problems:
        print(f"ok: {len(files)} file(s), all relative links and anchors "
              f"resolve")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
