#!/usr/bin/env python3
"""Diff two gcsafe reports (or directories of them) as a regression gate.

Compares the numeric metrics of a baseline report against a freshly
generated one and fails — exit status 1, one line per offending metric —
when any metric moved by more than the allowed threshold. Accepts any
schema whose leaves are numbers; in practice:

  gcsafe-bench-v1       rows flatten to "<row>.<metric>"
  gcsafe-run-report-v1  nested objects flatten to dotted paths
  gcsafe-profile-v1     same

Wall-clock metrics (any path segment ending in "_ns", or exactly "ns")
are ignored: the VM's modeled cycles are deterministic and
machine-independent, so committed baselines stay meaningful on any host,
while nanosecond timings are noise by construction.

Usage:
  bench_diff.py BASELINE NEW                    diff two report files
  bench_diff.py --scan BASELINE_DIR NEW_DIR     diff every BENCH_*.json
  bench_diff.py --rel 0.05 --abs 0.01 ...       adjust thresholds
  bench_diff.py --json VERDICT.json ...         machine-readable verdict

A metric passes when |new - base| <= max(rel * |base|, abs). A metric
present in the baseline but missing from the new report is a failure (a
bench that silently stopped measuring something must not pass the gate);
new metrics absent from the baseline are reported but allowed, so adding
instrumentation does not require regenerating every baseline first.
"""

import argparse
import json
import sys
from pathlib import Path

DEFAULT_REL = 0.05
DEFAULT_ABS = 0.01


def is_noise_key(key):
    return key == "ns" or key.endswith("_ns")


def flatten(doc, prefix="", out=None):
    """Numeric leaves of a JSON tree as {dotted.path: value}. Skips bools,
    strings, nulls, and wall-clock (*_ns) keys."""
    if out is None:
        out = {}
    if isinstance(doc, dict):
        # gcsafe-bench-v1 rows are a list of {name, metrics}; flatten them
        # under the row name so paths are stable across row reordering.
        if set(doc) == {"name", "metrics"} and isinstance(doc["name"], str):
            flatten(doc["metrics"], f"{prefix}{doc['name']}.", out)
            return out
        for key, value in doc.items():
            if is_noise_key(key):
                continue
            flatten(value, f"{prefix}{key}.", out)
    elif isinstance(doc, list):
        for i, value in enumerate(doc):
            flatten(value, f"{prefix}{i}.", out)
    elif isinstance(doc, bool) or doc is None or isinstance(doc, str):
        pass
    else:
        out[prefix[:-1]] = doc
    return out


def load_flat(path):
    doc = json.loads(Path(path).read_text())
    if isinstance(doc, dict) and isinstance(doc.get("rows"), list):
        # bench-v1: compare only the measured rows, not the header.
        flat = {}
        for row in doc["rows"]:
            flatten(row, "", flat)
        return flat
    return flatten(doc)


def diff_pair(base_path, new_path, rel, abs_tol):
    """Returns a list of per-metric verdict dicts for one file pair."""
    results = []
    base = load_flat(base_path)
    new = load_flat(new_path)
    for metric in sorted(base):
        if metric not in new:
            results.append({"metric": metric, "base": base[metric],
                            "new": None, "ok": False,
                            "why": "missing from new report"})
            continue
        b, n = base[metric], new[metric]
        allowed = max(rel * abs(b), abs_tol)
        delta = abs(n - b)
        ok = delta <= allowed
        entry = {"metric": metric, "base": b, "new": n, "ok": ok}
        if not ok:
            entry["why"] = (f"moved by {delta:g} "
                            f"(allowed {allowed:g}: max({rel:g}*|base|, "
                            f"{abs_tol:g}))")
        results.append(entry)
    for metric in sorted(set(new) - set(base)):
        results.append({"metric": metric, "base": None, "new": new[metric],
                        "ok": True, "why": "not in baseline (allowed)"})
    return results


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs=2, metavar=("BASELINE", "NEW"),
                        help="two report files, or two directories with "
                             "--scan")
    parser.add_argument("--scan", action="store_true",
                        help="treat the two paths as directories and diff "
                             "every BENCH_*.json in the baseline directory")
    parser.add_argument("--rel", type=float, default=DEFAULT_REL,
                        help=f"relative threshold (default {DEFAULT_REL})")
    parser.add_argument("--abs", dest="abs_tol", type=float,
                        default=DEFAULT_ABS,
                        help=f"absolute floor (default {DEFAULT_ABS})")
    parser.add_argument("--json", metavar="FILE",
                        help="write a gcsafe-bench-diff-v1 verdict document")
    args = parser.parse_args()

    pairs = []
    if args.scan:
        base_dir, new_dir = Path(args.paths[0]), Path(args.paths[1])
        baselines = sorted(base_dir.glob("BENCH_*.json"))
        if not baselines:
            print(f"error: no BENCH_*.json found under {base_dir}",
                  file=sys.stderr)
            return 1
        for base in baselines:
            pairs.append((base, new_dir / base.name))
    else:
        pairs.append((Path(args.paths[0]), Path(args.paths[1])))

    files = []
    failures = 0
    compared = 0
    for base_path, new_path in pairs:
        entry = {"baseline": str(base_path), "new": str(new_path)}
        if not new_path.exists():
            entry["ok"] = False
            entry["metrics"] = []
            print(f"FAIL {new_path}: missing (baseline {base_path} exists)",
                  file=sys.stderr)
            failures += 1
            files.append(entry)
            continue
        try:
            results = diff_pair(base_path, new_path, args.rel, args.abs_tol)
        except (OSError, json.JSONDecodeError) as exc:
            entry["ok"] = False
            entry["metrics"] = []
            print(f"FAIL {new_path}: {exc}", file=sys.stderr)
            failures += 1
            files.append(entry)
            continue
        bad = [r for r in results if not r["ok"]]
        compared += sum(1 for r in results if r.get("base") is not None)
        for r in bad:
            print(f"FAIL {new_path}: {r['metric']}: base={r['base']} "
                  f"new={r['new']} ({r['why']})", file=sys.stderr)
        if bad:
            failures += len(bad)
        else:
            print(f"ok: {new_path} vs {base_path} "
                  f"({sum(1 for r in results if r.get('base') is not None)} "
                  f"metrics within thresholds)")
        entry["ok"] = not bad
        entry["metrics"] = results
        files.append(entry)

    if args.json:
        verdict = {
            "schema": "gcsafe-bench-diff-v1",
            "rel_threshold": args.rel,
            "abs_threshold": args.abs_tol,
            "metrics_compared": compared,
            "failures": failures,
            "ok": failures == 0,
            "files": files,
        }
        Path(args.json).write_text(json.dumps(verdict, indent=2) + "\n")

    if failures:
        print(f"bench_diff: {failures} failure(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
