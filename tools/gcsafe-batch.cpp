//===- tools/gcsafe-batch.cpp - Crash-isolated batch compilation ---------===//
//
// Part of the gcsafe project, a reproduction of Boehm, "Simple
// Garbage-Collector-Safety" (PLDI 1996).
//
// Compiles (and optionally runs) N inputs through fork-isolated workers so
// one crashing, hanging or unsafe input cannot take down the batch
// (docs/ROBUSTNESS.md §6). Each worker is a fresh process running the
// self-healing pipeline; the parent enforces a per-attempt wall timeout
// (SIGKILL), retries failed attempts with exponential backoff — each retry
// entering the degradation ladder one rung lower — and writes a
// gcsafe-batch-v1 triage summary attributing every failure.
//
//   gcsafe-batch --run --timeout=3000 --retries=2 tests/corpus/*.c
//
// Exit status (support/ExitCodes.h): 0 when every input compiled cleanly,
// 5 when the worst outcome was a degraded success, 1 when any input
// failed outright (unless --allow-failures), 2 on usage errors.
//
//===----------------------------------------------------------------------===//

#include "analysis/SafetyVerifier.h"
#include "driver/Isolate.h"
#include "driver/Pipeline.h"
#include "driver/SelfHeal.h"
#include "serve/Service.h"
#include "support/ExitCodes.h"
#include "support/FaultInject.h"
#include "support/Stats.h"
#include "vm/VM.h"

#include <future>

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace gcsafe;

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: gcsafe-batch [options] <file.c>...\n"
      "  --jobs=N            concurrent workers (default 4)\n"
      "  --timeout=MS        per-attempt wall timeout enforced by the\n"
      "                      parent with SIGKILL (default 30000, 0=none)\n"
      "  --retries=N         retries per input after a timeout, crash or\n"
      "                      safety failure; each retry enters the\n"
      "                      degradation ladder one rung lower (default 2)\n"
      "  --backoff-ms=MS     base retry backoff, doubled per retry\n"
      "                      (default 50)\n"
      "  --mode=o2|safe|safepost|debug|checked   compile mode (default\n"
      "                      safe)\n"
      "  --run               execute each program in the VM too\n"
      "  --gc-period=N --gc-alloc-trigger=N      forwarded to the VM\n"
      "  --pass-deadline=MS --gc-deadline=MS --vm-deadline=MS\n"
      "                      forwarded worker deadlines\n"
      "  --fail-inject=SEED:SPEC   armed in every worker (fresh,\n"
      "                      deterministic per process)\n"
      "  --summary=FILE      write the gcsafe-batch-v1 JSON summary\n"
      "                      ('-' = stdout)\n"
      "  --allow-failures    exit 0 even when inputs failed (the summary\n"
      "                      still records them)\n"
      "  --kill-input=SUBSTR test hook: the worker whose input path\n"
      "                      contains SUBSTR raises SIGKILL on its first\n"
      "                      attempt, exercising the crash-retry path\n"
      "                      (fork mode only)\n"
      "  --service           submit inputs through an in-process\n"
      "                      serve::CompileService thread pool instead of\n"
      "                      forking one process per attempt\n"
      "                      (docs/SERVING.md). Self-heal ladder and\n"
      "                      quarantine state stay per-request; repeated\n"
      "                      identical inputs hit the content-addressed\n"
      "                      cache. No SIGKILL crash isolation: --timeout,\n"
      "                      --retries and --kill-input do not apply\n");
}

bool startsWith(const char *Arg, const char *Prefix, const char *&Rest) {
  size_t Len = std::strlen(Prefix);
  if (std::strncmp(Arg, Prefix, Len) != 0)
    return false;
  Rest = Arg + Len;
  return true;
}

struct BatchOptions {
  unsigned Jobs = 4;
  uint64_t TimeoutMs = 30000;
  unsigned Retries = 2;
  uint64_t BackoffMs = 50;
  driver::CompileMode Mode = driver::CompileMode::O2Safe;
  bool Run = false;
  uint64_t GcPeriod = 0;
  uint64_t GcAllocTrigger = 0;
  uint64_t PassDeadlineNs = 0, GcDeadlineNs = 0, VmDeadlineNs = 0;
  std::string FailInjectSpec;
  std::string SummaryPath;
  bool AllowFailures = false;
  std::string KillInputSubstr;
  bool Service = false;
};

const char *modeName(driver::CompileMode M) {
  return driver::compileModeName(M);
}

/// The worker body, run in the forked child. Returns the process exit
/// code; a one-line human detail is written to \p DetailFd first.
int runWorker(const std::string &Path, driver::OptRung Rung,
              unsigned AttemptIdx, const BatchOptions &O, int DetailFd) {
  auto Detail = [&](const std::string &Text) {
    if (!Text.empty()) {
      ssize_t W = write(DetailFd, Text.data(), Text.size());
      (void)W;
    }
  };

  // Test hook: simulate a worker crash (a compiler bug segfaulting, an
  // OOM kill) on the first attempt so the retry path is exercised.
  if (!O.KillInputSubstr.empty() && AttemptIdx == 0 &&
      Path.find(O.KillInputSubstr) != std::string::npos)
    raise(SIGKILL);

  std::ifstream In(Path);
  if (!In) {
    Detail("cannot open input");
    return support::ExitError;
  }
  std::stringstream SS;
  SS << In.rdbuf();

  driver::Compilation Comp(Path, SS.str());
  if (!Comp.parse()) {
    Detail("parse failed");
    return support::ExitError;
  }

  support::FaultInjector Faults;
  bool UseFaults = false;
  if (!O.FailInjectSpec.empty()) {
    std::string Error;
    if (!support::FaultInjector::parse(O.FailInjectSpec, Faults, Error)) {
      Detail("bad --fail-inject spec: " + Error);
      return support::ExitUsage;
    }
    UseFaults = true;
  }

  driver::CompileOptions CO;
  CO.Mode = O.Mode;
  driver::SelfHealOptions SH;
  SH.StartRung = Rung;
  SH.PassDeadlineNs = O.PassDeadlineNs;
  SH.Faults = UseFaults ? &Faults : nullptr;
  driver::SelfHealReport Heal;
  driver::CompileResult CR = driver::compileSelfHealing(Comp, CO, SH, Heal);
  if (!CR.Ok) {
    Detail("compile failed");
    return support::ExitError;
  }
  if (!Heal.Ok) {
    Detail("unsafe at every rung: " +
           (CR.SafetyDiags.empty()
                ? std::string("(no diagnostic)")
                : analysis::formatSafetyDiag(CR.SafetyDiags.front())));
    return support::ExitSafetyViolation;
  }

  std::ostringstream D;
  D << "rung=" << driver::optRungName(Heal.Rung)
    << " rollbacks=" << Heal.Rollbacks.size()
    << " quarantined=" << Heal.Quarantined.size();

  if (O.Run) {
    vm::VMOptions VO;
    VO.GcInstructionPeriod = O.GcPeriod;
    VO.GcAllocTrigger = O.GcAllocTrigger;
    VO.VmDeadlineNs = O.VmDeadlineNs;
    VO.GcDeadlineNs = O.GcDeadlineNs;
    if (UseFaults)
      VO.Faults = &Faults;
    vm::VM Machine(CR.Module, VO);
    vm::RunResult R = Machine.run();
    if (R.WatchdogTimeout) {
      Detail(R.Error);
      return support::ExitWatchdogTimeout;
    }
    if (!R.Ok) {
      Detail("runtime error: " + R.Error);
      return support::ExitError;
    }
    if (R.ExitCode != 0) {
      D << " exit=" << R.ExitCode;
      Detail(D.str());
      return static_cast<int>(R.ExitCode & 0xFF);
    }
  }

  Detail(D.str());
  return Heal.Degraded ? support::ExitDegradedSuccess : support::ExitSuccess;
}

struct AttemptRecord {
  std::string Rung;
  std::string Outcome;
  int ExitCode = 0;
  int Signal = 0;
  uint64_t DurationMs = 0;
  std::string Detail;
};

struct InputState {
  std::string Path;
  driver::OptRung Rung = driver::OptRung::Full;
  unsigned AttemptIdx = 0;
  uint64_t NotBeforeNs = 0;
  std::vector<AttemptRecord> Attempts;
  std::string Status; ///< Empty until final: "ok" / "degraded" / "failed".
};

struct RunningWorker {
  pid_t Pid = -1;
  size_t Input = 0;
  uint64_t StartNs = 0;
  uint64_t DeadlineNs = 0; ///< 0 = no timeout.
  int DetailFd = -1;
  bool TimedOut = false;
};

// The ladder step, the exit-code triage and the wait-status
// classification live in driver/Isolate.h now, shared with
// gcsafe-serve --isolate.

/// Folds one reaped wait status into an attempt record, keeping a detail
/// line the worker wrote over the classifier's default.
void classify(int Status, bool TimedOut, AttemptRecord &A) {
  driver::WaitClassification C = driver::classifyWaitStatus(Status, TimedOut);
  A.Outcome = C.Outcome;
  A.ExitCode = C.ExitCode;
  A.Signal = C.Signal;
  if (A.Detail.empty())
    A.Detail = C.DefaultDetail;
}

std::string readDetail(int Fd) {
  std::string Out;
  char Buf[512];
  for (;;) {
    ssize_t N = read(Fd, Buf, sizeof(Buf));
    if (N <= 0)
      break;
    Out.append(Buf, static_cast<size_t>(N));
  }
  // One line only; workers write exactly one, but be defensive.
  size_t NL = Out.find('\n');
  if (NL != std::string::npos)
    Out.resize(NL);
  if (Out.size() > 400)
    Out.resize(400);
  return Out;
}

} // namespace

int main(int argc, char **argv) {
  BatchOptions O;
  std::vector<InputState> Inputs;

  for (int I = 1; I < argc; ++I) {
    const char *Arg = argv[I];
    const char *Rest = nullptr;
    if (startsWith(Arg, "--jobs=", Rest)) {
      O.Jobs = static_cast<unsigned>(std::strtoul(Rest, nullptr, 10));
      if (!O.Jobs) {
        std::fprintf(stderr, "--jobs must be positive\n");
        return support::ExitUsage;
      }
    } else if (startsWith(Arg, "--timeout=", Rest)) {
      O.TimeoutMs = std::strtoull(Rest, nullptr, 10);
    } else if (startsWith(Arg, "--retries=", Rest)) {
      O.Retries = static_cast<unsigned>(std::strtoul(Rest, nullptr, 10));
    } else if (startsWith(Arg, "--backoff-ms=", Rest)) {
      O.BackoffMs = std::strtoull(Rest, nullptr, 10);
    } else if (startsWith(Arg, "--mode=", Rest)) {
      std::string M = Rest;
      if (M == "o2")
        O.Mode = driver::CompileMode::O2;
      else if (M == "safe")
        O.Mode = driver::CompileMode::O2Safe;
      else if (M == "safepost")
        O.Mode = driver::CompileMode::O2SafePost;
      else if (M == "debug")
        O.Mode = driver::CompileMode::Debug;
      else if (M == "checked")
        O.Mode = driver::CompileMode::DebugChecked;
      else {
        std::fprintf(stderr, "unknown mode '%s'\n", Rest);
        return support::ExitUsage;
      }
    } else if (!std::strcmp(Arg, "--run")) {
      O.Run = true;
    } else if (startsWith(Arg, "--gc-period=", Rest)) {
      O.GcPeriod = std::strtoull(Rest, nullptr, 10);
    } else if (startsWith(Arg, "--gc-alloc-trigger=", Rest)) {
      O.GcAllocTrigger = std::strtoull(Rest, nullptr, 10);
    } else if (startsWith(Arg, "--pass-deadline=", Rest)) {
      O.PassDeadlineNs = std::strtoull(Rest, nullptr, 10) * 1000000ull;
    } else if (startsWith(Arg, "--gc-deadline=", Rest)) {
      O.GcDeadlineNs = std::strtoull(Rest, nullptr, 10) * 1000000ull;
    } else if (startsWith(Arg, "--vm-deadline=", Rest)) {
      O.VmDeadlineNs = std::strtoull(Rest, nullptr, 10) * 1000000ull;
    } else if (startsWith(Arg, "--fail-inject=", Rest)) {
      // Validate up front; workers re-parse their own fresh copy.
      support::FaultInjector Probe;
      std::string Error;
      if (!support::FaultInjector::parse(Rest, Probe, Error)) {
        std::fprintf(stderr, "bad --fail-inject spec: %s\n", Error.c_str());
        return support::ExitUsage;
      }
      O.FailInjectSpec = Rest;
    } else if (startsWith(Arg, "--summary=", Rest)) {
      O.SummaryPath = Rest;
    } else if (!std::strcmp(Arg, "--allow-failures")) {
      O.AllowFailures = true;
    } else if (startsWith(Arg, "--kill-input=", Rest)) {
      O.KillInputSubstr = Rest;
    } else if (!std::strcmp(Arg, "--service")) {
      O.Service = true;
    } else if (!std::strcmp(Arg, "--help") || !std::strcmp(Arg, "-h")) {
      usage();
      return support::ExitSuccess;
    } else if (Arg[0] == '-' && Arg[1] != '\0') {
      std::fprintf(stderr, "unknown option '%s'\n", Arg);
      usage();
      return support::ExitUsage;
    } else {
      InputState S;
      S.Path = Arg;
      Inputs.push_back(std::move(S));
    }
  }
  if (Inputs.empty()) {
    usage();
    return support::ExitUsage;
  }
  if (O.Service && !O.KillInputSubstr.empty()) {
    std::fprintf(stderr,
                 "--kill-input needs fork isolation; it cannot be combined "
                 "with --service\n");
    return support::ExitUsage;
  }

  std::vector<RunningWorker> Running;
  size_t Done = 0;
  uint64_t Timeouts = 0, Signals = 0, TotalAttempts = 0;
  support::Json ServiceJ; // null unless --service ran

  if (O.Service) {
    // In-process mode (docs/SERVING.md): one CompileService, one request
    // per input through the worker pool. Each request owns its fault
    // injector, ladder and quarantine set, so a degraded input cannot
    // poison the next — the property tests/test_serve.cpp proves.
    serve::ServiceOptions SO;
    SO.Workers = O.Jobs;
    serve::CompileService Svc(SO);
    std::vector<std::future<serve::ServeResult>> Futures(Inputs.size());
    std::vector<std::string> ReadErrors(Inputs.size());
    std::vector<uint64_t> StartNs(Inputs.size());
    for (size_t I = 0; I < Inputs.size(); ++I) {
      std::ifstream In(Inputs[I].Path);
      if (!In) {
        ReadErrors[I] = "cannot open input";
        continue;
      }
      std::stringstream SS;
      SS << In.rdbuf();
      driver::RequestOptions R;
      R.Name = Inputs[I].Path;
      R.Source = SS.str();
      R.Mode = O.Mode;
      R.SelfHeal = true;
      R.PassDeadlineNs = O.PassDeadlineNs;
      R.FailInjectSpec = O.FailInjectSpec;
      R.Run = O.Run;
      R.GcInstructionPeriod = O.GcPeriod;
      R.GcAllocTrigger = O.GcAllocTrigger;
      R.GcDeadlineNs = O.GcDeadlineNs;
      R.VmDeadlineNs = O.VmDeadlineNs;
      StartNs[I] = support::monotonicNowNs();
      Futures[I] = Svc.submit(std::move(R));
    }
    for (size_t I = 0; I < Inputs.size(); ++I) {
      InputState &S = Inputs[I];
      AttemptRecord A;
      A.Rung = driver::optRungName(S.Rung);
      if (!ReadErrors[I].empty()) {
        A.Outcome = "error";
        A.ExitCode = support::ExitError;
        A.Detail = ReadErrors[I];
      } else {
        serve::ServeResult R = Futures[I].get();
        A.DurationMs =
            (support::monotonicNowNs() - StartNs[I]) / 1000000ull;
        A.ExitCode = R.ExitCode;
        A.Outcome = driver::outcomeForExit(R.ExitCode);
        A.Rung = R.Rung;
        std::ostringstream D;
        D << "rung=" << R.Rung << " quarantined=" << R.Quarantined.size();
        if (R.Cached)
          D << " cached";
        if (!R.Error.empty()) {
          std::string E = R.Error.substr(0, R.Error.find('\n'));
          if (E.size() > 400)
            E.resize(400);
          D << " — " << E;
        }
        A.Detail = D.str();
      }
      ++TotalAttempts;
      if (A.Outcome == "timeout")
        ++Timeouts;
      std::fprintf(stderr, "gcsafe-batch: [%s] service request: %s%s%s\n",
                   S.Path.c_str(), A.Outcome.c_str(),
                   A.Detail.empty() ? "" : " — ", A.Detail.c_str());
      S.Status = A.Outcome == "ok"         ? "ok"
                 : A.Outcome == "degraded" ? "degraded"
                                           : "failed";
      S.Attempts.push_back(std::move(A));
      ++Done;
    }
    support::Json Tree = Svc.statsSnapshot().toJson();
    if (const support::Json *Serve = Tree.get("serve"))
      ServiceJ = *Serve;
    else
      ServiceJ = support::Json::object();
  }

  auto Spawn = [&](size_t Idx) -> bool {
    InputState &S = Inputs[Idx];
    int Pipe[2];
    if (pipe(Pipe) != 0) {
      std::fprintf(stderr, "gcsafe-batch: pipe: %s\n", std::strerror(errno));
      return false;
    }
    pid_t Pid = fork();
    if (Pid < 0) {
      std::fprintf(stderr, "gcsafe-batch: fork: %s\n", std::strerror(errno));
      close(Pipe[0]);
      close(Pipe[1]);
      return false;
    }
    if (Pid == 0) {
      close(Pipe[0]);
      int Code = runWorker(S.Path, S.Rung, S.AttemptIdx, O, Pipe[1]);
      close(Pipe[1]);
      _exit(Code);
    }
    close(Pipe[1]);
    int Flags = fcntl(Pipe[0], F_GETFL, 0);
    fcntl(Pipe[0], F_SETFL, Flags | O_NONBLOCK);
    RunningWorker W;
    W.Pid = Pid;
    W.Input = Idx;
    W.StartNs = support::monotonicNowNs();
    W.DeadlineNs =
        O.TimeoutMs ? W.StartNs + O.TimeoutMs * 1000000ull : 0;
    W.DetailFd = Pipe[0];
    Running.push_back(W);
    return true;
  };

  auto Reap = [&](size_t RIdx, int Status) {
    RunningWorker W = Running[RIdx];
    Running.erase(Running.begin() + RIdx);
    InputState &S = Inputs[W.Input];
    AttemptRecord A;
    A.Rung = driver::optRungName(S.Rung);
    A.DurationMs = (support::monotonicNowNs() - W.StartNs) / 1000000ull;
    A.Detail = readDetail(W.DetailFd);
    close(W.DetailFd);
    classify(Status, W.TimedOut, A);
    ++TotalAttempts;
    if (A.Outcome == "timeout")
      ++Timeouts;
    if (A.Outcome == "signal")
      ++Signals;

    bool Retryable = A.Outcome == "timeout" || A.Outcome == "signal" ||
                     A.Outcome == "safety";
    std::fprintf(stderr, "gcsafe-batch: [%s] attempt %u at rung %s: %s%s%s\n",
                 S.Path.c_str(), S.AttemptIdx + 1, A.Rung.c_str(),
                 A.Outcome.c_str(), A.Detail.empty() ? "" : " — ",
                 A.Detail.c_str());
    S.Attempts.push_back(std::move(A));

    if (Retryable && S.AttemptIdx < O.Retries) {
      // Back off exponentially and re-enter the ladder one rung lower: a
      // crash or hang at full optimization often clears at a simpler one.
      uint64_t Backoff = O.BackoffMs << S.AttemptIdx;
      S.NotBeforeNs = support::monotonicNowNs() + Backoff * 1000000ull;
      S.Rung = driver::lowerRung(S.Rung);
      ++S.AttemptIdx;
      return;
    }
    const std::string &Out = S.Attempts.back().Outcome;
    S.Status = Out == "ok" ? "ok" : Out == "degraded" ? "degraded" : "failed";
    ++Done;
  };

  while (Done < Inputs.size()) {
    uint64_t Now = support::monotonicNowNs();
    // Launch eligible inputs into free worker slots.
    for (size_t I = 0; I < Inputs.size() && Running.size() < O.Jobs; ++I) {
      InputState &S = Inputs[I];
      if (!S.Status.empty() || S.NotBeforeNs > Now)
        continue;
      bool IsRunning = false;
      for (const RunningWorker &W : Running)
        if (W.Input == I)
          IsRunning = true;
      if (IsRunning)
        continue;
      if (!Spawn(I)) {
        S.Status = "failed";
        AttemptRecord A;
        A.Rung = driver::optRungName(S.Rung);
        A.Outcome = "error";
        A.ExitCode = -1;
        A.Detail = "spawn failed";
        S.Attempts.push_back(std::move(A));
        ++TotalAttempts;
        ++Done;
      }
    }

    // Reap any finished worker.
    int Status = 0;
    pid_t P = waitpid(-1, &Status, WNOHANG);
    if (P > 0) {
      for (size_t R = 0; R < Running.size(); ++R)
        if (Running[R].Pid == P) {
          Reap(R, Status);
          break;
        }
      continue; // There may be more to reap; skip the sleep.
    }

    // Enforce attempt timeouts.
    Now = support::monotonicNowNs();
    for (RunningWorker &W : Running)
      if (W.DeadlineNs && Now > W.DeadlineNs && !W.TimedOut) {
        W.TimedOut = true;
        kill(W.Pid, SIGKILL);
      }

    usleep(5000);
  }

  unsigned Ok = 0, Degraded = 0, Failed = 0;
  for (const InputState &S : Inputs) {
    if (S.Status == "ok")
      ++Ok;
    else if (S.Status == "degraded")
      ++Degraded;
    else
      ++Failed;
  }
  std::fprintf(stderr,
               "gcsafe-batch: %zu input(s): %u ok, %u degraded, %u failed; "
               "%llu attempt(s), %llu timeout(s), %llu signal(s)\n",
               Inputs.size(), Ok, Degraded, Failed,
               static_cast<unsigned long long>(TotalAttempts),
               static_cast<unsigned long long>(Timeouts),
               static_cast<unsigned long long>(Signals));

  if (!O.SummaryPath.empty()) {
    using support::Json;
    Json Root = Json::object();
    Root["schema"] = Json::string("gcsafe-batch-v1");
    Root["mode"] = Json::string(modeName(O.Mode));
    Root["jobs"] = Json::integer(uint64_t(O.Jobs));
    Root["timeout_ms"] = Json::integer(O.TimeoutMs);
    Root["retries"] = Json::integer(uint64_t(O.Retries));
    Json InputsJ = Json::array();
    for (const InputState &S : Inputs) {
      Json E = Json::object();
      E["input"] = Json::string(S.Path);
      E["status"] = Json::string(S.Status);
      Json Attempts = Json::array();
      for (const AttemptRecord &A : S.Attempts) {
        Json AJ = Json::object();
        AJ["rung"] = Json::string(A.Rung);
        AJ["outcome"] = Json::string(A.Outcome);
        AJ["exit_code"] = Json::integer(int64_t(A.ExitCode));
        AJ["signal"] = Json::integer(int64_t(A.Signal));
        AJ["duration_ms"] = Json::integer(A.DurationMs);
        if (!A.Detail.empty())
          AJ["detail"] = Json::string(A.Detail);
        Attempts.push(std::move(AJ));
      }
      E["attempts"] = std::move(Attempts);
      InputsJ.push(std::move(E));
    }
    Root["inputs"] = std::move(InputsJ);
    // Present only under --service: the serve.* stats tree (workers,
    // request/response counters, cache and verify-memo hit rates).
    if (!ServiceJ.isNull())
      Root["service"] = ServiceJ;
    Json Totals = Json::object();
    Totals["inputs"] = Json::integer(uint64_t(Inputs.size()));
    Totals["ok"] = Json::integer(uint64_t(Ok));
    Totals["degraded"] = Json::integer(uint64_t(Degraded));
    Totals["failed"] = Json::integer(uint64_t(Failed));
    Totals["attempts"] = Json::integer(TotalAttempts);
    Totals["retries"] = Json::integer(TotalAttempts - Inputs.size());
    Totals["timeouts"] = Json::integer(Timeouts);
    Totals["signals"] = Json::integer(Signals);
    Root["totals"] = std::move(Totals);

    std::string Text = Root.dump();
    if (O.SummaryPath == "-") {
      std::fputs(Text.c_str(), stdout);
      std::fputc('\n', stdout);
    } else {
      std::ofstream Out(O.SummaryPath);
      if (!Out) {
        std::fprintf(stderr, "gcsafe-batch: cannot write '%s'\n",
                     O.SummaryPath.c_str());
        return support::ExitError;
      }
      Out << Text << "\n";
    }
  }

  if (Failed && !O.AllowFailures)
    return support::ExitError;
  if (Degraded && !O.AllowFailures)
    return support::ExitDegradedSuccess;
  return support::ExitSuccess;
}
