#!/usr/bin/env python3
"""Telemetry acceptance harness for gcsafe-serve (docs/OBSERVABILITY.md §8).

Exercises the request-telemetry layer end to end through --once sessions
and leaves every export on disk for schema validation:

  serve_metrics_test.py --serve-bin BIN --source FILE --outdir DIR

Phase 1 (metrics + trace propagation): one session — ping, a cold
compile carrying request_id "m-cold", the same compile warm as "m-warm",
a third compile with no request_id at all, then metrics and stats — with
--trace-chrome, --flightrec-dir, and --metrics-text armed. Assertions:

  - every compile response echoes its client request_id verbatim, and
    the id-less compile gets a generated "r-<n>" id;
  - exactly one of the three identical compiles runs cold (which one is
    scheduling-dependent — they race through the worker pool and
    single-flight elects the leader) and the other two replay it;
  - the metrics op answers gcsafe-metrics-v1 with the e2e histogram
    counting all three compiles, exactly one compile-stage sample, and
    stats agreement (e2e count == serve.requests);
  - the Chrome trace export contains one "request" span pair per
    request, keyed by the uniquified "<request_id>#<seq>" trace id, so
    duplicate client ids can never merge span trees;
  - the Prometheus exposition on stderr carries the counter and
    histogram families.

Phase 2 (flight recorder): a fresh --isolate session with
serve.worker.crash@always and no retries — the compile must come back
typed "crashed" and the daemon must leave
DIR/flightrec-m-victim.json, a gcsafe-flightrec-v1 dump naming the
victim's request_id.

Artifacts written to --outdir (the ctest wiring validates all of them
with check_bench_json.py):

  serve_metrics.ndjson   the phase-1 response transcript   (--serve)
  serve_metrics.json     the standalone metrics snapshot   (positional)
  serve_chrome.json      the Chrome trace export           (--chrome)
  flightrec-m-victim.json  the crash dump                  (positional)

Exits nonzero with a message on the first violated expectation.
"""

import argparse
import json
import subprocess
import sys
from pathlib import Path


def fail(message):
    print(f"serve_metrics_test: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def run_once(serve_bin, requests, extra_flags, expect_exit=0):
    text = "".join(json.dumps(r) + "\n" for r in requests)
    proc = subprocess.run([serve_bin, "--once"] + extra_flags, input=text,
                          capture_output=True, text=True, timeout=120)
    if proc.returncode != expect_exit:
        fail(f"gcsafe-serve --once exited {proc.returncode}, expected "
             f"{expect_exit}: {proc.stderr}")
    lines = [l for l in proc.stdout.splitlines() if l.strip()]
    if len(lines) != len(requests):
        fail(f"{len(lines)} response lines for {len(requests)} requests")
    return lines, proc.stderr


def metrics_phase(args, outdir):
    source = Path(args.source).read_text()
    compile_req = {"schema": "gcsafe-serve-v1", "op": "compile",
                   "name": "metrics-test", "source": source,
                   "mode": "safepost", "run": True}
    requests = [
        {"schema": "gcsafe-serve-v1", "op": "ping", "id": "ping-1"},
        dict(compile_req, id="cold-1", request_id="m-cold"),
        dict(compile_req, id="warm-1", request_id="m-warm"),
        dict(compile_req, id="anon-1"),
        {"schema": "gcsafe-serve-v1", "op": "metrics", "id": "metrics-1"},
        {"schema": "gcsafe-serve-v1", "op": "stats", "id": "stats-1"},
    ]
    chrome_path = outdir / "serve_chrome.json"
    lines, stderr = run_once(args.serve_bin, requests, [
        f"--trace-chrome={chrome_path}", f"--flightrec-dir={outdir}",
        "--metrics-text"])
    (outdir / "serve_metrics.ndjson").write_text(
        "".join(l + "\n" for l in lines))
    by_id = {json.loads(l).get("id"): json.loads(l) for l in lines}

    # Trace propagation: client ids echo, absent ids are generated.
    for rid, want in (("cold-1", "m-cold"), ("warm-1", "m-warm")):
        got = by_id[rid].get("request_id")
        if got != want:
            fail(f"{rid} echoed request_id {got!r}, expected {want!r}")
    anon = by_id["anon-1"].get("request_id", "")
    if not anon.startswith("r-"):
        fail(f"id-less compile got request_id {anon!r}, expected a "
             "generated 'r-<n>'")
    # The three identical compiles race through the worker pool, so *which*
    # one runs cold is scheduling-dependent — but single-flight guarantees
    # exactly one compile happens and the other two replay it.
    cold = [r for r in ("cold-1", "warm-1", "anon-1")
            if not by_id[r].get("cached")]
    if len(cold) != 1:
        fail(f"expected exactly one cold compile among the identical "
             f"triplet, got {cold or 'none'}")

    # The metrics snapshot: all three compiles end to end, one cold.
    snap = by_id["metrics-1"]["metrics"]
    if snap.get("schema") != "gcsafe-metrics-v1":
        fail(f"metrics response schema {snap.get('schema')!r}")
    stages = snap["stages"]
    if stages["e2e"]["count"] != 3:
        fail(f"e2e count {stages['e2e']['count']}, expected 3")
    if stages["compile"]["count"] != 1:
        fail(f"compile count {stages['compile']['count']}, expected 1 "
             "(the warm twins must hit the cache)")
    serve = by_id["stats-1"]["serve"]
    if stages["e2e"]["count"] != serve["requests"]:
        fail(f"e2e count {stages['e2e']['count']} != serve.requests "
             f"{serve['requests']}")
    if "uptime_ns" not in serve or serve["uptime_ns"] <= 0:
        fail(f"stats without a positive serve.uptime_ns: {serve}")
    (outdir / "serve_metrics.json").write_text(
        json.dumps(snap, indent=1) + "\n")

    # The Chrome export: one b/e "request" span pair per request, keyed
    # by the uniquified trace id.
    trace = json.loads(chrome_path.read_text())
    spans = {}
    for ev in trace["traceEvents"]:
        if ev.get("name") == "request" and ev.get("ph") in ("b", "e"):
            spans.setdefault(ev["id"], []).append(ev["ph"])
    if len(spans) != 3:
        fail(f"{len(spans)} request span trees for 3 requests: "
             f"{sorted(spans)}")
    for tid, phases in spans.items():
        if sorted(phases) != ["b", "e"]:
            fail(f"span {tid!r} is not a b/e pair: {phases}")
        if "#" not in tid:
            fail(f"span id {tid!r} is not a '<request_id>#<seq>' trace id")
    want_prefixes = {"m-cold#", "m-warm#", "r-"}
    for prefix in want_prefixes:
        if not any(t.startswith(prefix) for t in spans):
            fail(f"no request span with trace-id prefix {prefix!r}: "
                 f"{sorted(spans)}")

    # The Prometheus exposition (stderr, --metrics-text).
    for needle in ("gcsafe_serve_requests_total 3",
                   "gcsafe_serve_e2e_ns_count 3",
                   "gcsafe_serve_e2e_ns_bucket{le=\"+Inf\"} 3",
                   "gcsafe_serve_uptime_ns "):
        if needle not in stderr:
            fail(f"--metrics-text exposition missing {needle!r}")


def flightrec_phase(args, outdir):
    source = Path(args.source).read_text()
    requests = [
        {"schema": "gcsafe-serve-v1", "op": "compile", "id": "victim-1",
         "request_id": "m-victim", "name": "victim", "source": source,
         "mode": "safepost", "run": True},
    ]
    lines, _ = run_once(args.serve_bin, requests, [
        "--isolate", "--isolate-retries=0",
        "--fail-inject=7:serve.worker.crash@always",
        f"--flightrec-dir={outdir}"])
    resp = json.loads(lines[0])
    if resp.get("status") != "crashed" or resp.get("exit_code") != 8:
        fail(f"injected crash not typed 'crashed': {resp}")
    if resp.get("request_id") != "m-victim":
        fail(f"crashed response request_id {resp.get('request_id')!r}")
    dump_path = outdir / "flightrec-m-victim.json"
    if not dump_path.exists():
        fail(f"no flight-recorder dump at {dump_path}")
    doc = json.loads(dump_path.read_text())
    if doc.get("schema") != "gcsafe-flightrec-v1":
        fail(f"dump schema {doc.get('schema')!r}")
    if doc.get("request_id") != "m-victim" or doc.get("reason") != "crash":
        fail(f"dump does not attribute the victim: {doc}")
    rids = {e.get("request_id") for e in doc.get("events", [])}
    if doc.get("trace_id") not in rids:
        fail(f"dump trace_id {doc.get('trace_id')!r} absent from its own "
             f"events: {sorted(rids)}")


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--serve-bin", required=True,
                        help="path to the gcsafe-serve binary")
    parser.add_argument("--source", required=True,
                        help="C source file to compile through the service")
    parser.add_argument("--outdir", required=True,
                        help="directory for the telemetry artifacts")
    args = parser.parse_args()

    outdir = Path(args.outdir)
    outdir.mkdir(parents=True, exist_ok=True)
    metrics_phase(args, outdir)
    flightrec_phase(args, outdir)
    print("serve_metrics_test: ok (request_id propagation, metrics "
          "snapshot, Chrome span trees, Prometheus exposition, crash "
          "flight-recorder dump)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
