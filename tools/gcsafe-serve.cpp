//===- tools/gcsafe-serve.cpp - The persistent compile service -----------===//
//
// Part of the gcsafe project, a reproduction of Boehm, "Simple
// Garbage-Collector-Safety" (PLDI 1996).
//
// A daemon in front of serve::CompileService (docs/SERVING.md): requests
// are line-delimited gcsafe-serve-v1 JSON documents, responses come back
// one line each in request order. Two transports:
//
//   gcsafe-serve --socket=/tmp/gcsafe.sock      # unix-socket daemon
//   gcsafe-serve --once < requests.ndjson       # stdin/stdout, for tests
//
// Compile state is per-request (driver/Request.h); the only cross-request
// state is the content-addressed response cache and the per-function
// verification memo, both keyed purely on content.
//
// The daemon is hardened for hostile and overloaded traffic
// (docs/SERVING.md §"Operating under load"): the submit queue is bounded
// (--queue-max, shed requests get typed "overloaded" responses), requests
// can carry deadlines (deadline_ms, with a daemon-side guard so even a
// wedged compile answers), --isolate forks each compile into a sandbox so
// a crash costs one request, connections have read/write timeouts and a
// max request size, finished connection threads are reaped, and "health"/
// "drain" ops let a supervisor probe readiness and retire the daemon
// gracefully.
//
//===----------------------------------------------------------------------===//

#include "serve/Protocol.h"
#include "support/ExitCodes.h"
#include "support/Interleave.h"
#include "support/RankedMutex.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <future>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace gcsafe;

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: gcsafe-serve (--socket=PATH | --once) [options]\n"
      "  --socket=PATH       listen for connections on a unix socket;\n"
      "                      one gcsafe-serve-v1 JSON request per line,\n"
      "                      one response line each, in request order\n"
      "  --once              serve a single batch: read requests from\n"
      "                      stdin until EOF, write responses to stdout\n"
      "                      in input order, exit\n"
      "  --workers=N         compile worker threads (default 4)\n"
      "  --cache-max=N       response-cache entry cap (default 1024)\n"
      "  --no-cache          disable the content-addressed response cache\n"
      "                      (requests may still opt out individually\n"
      "                      with \"cache\": false)\n"
      "  --queue-max=N       admission control: shed compile requests\n"
      "                      with a typed \"overloaded\" response once N\n"
      "                      are queued (default 256, 0 = unbounded)\n"
      "  --store-dir=DIR     back the response cache with a crash-safe\n"
      "                      on-disk store under DIR/gcsafe-store-v1/:\n"
      "                      entries are written atomically (temp+fsync+\n"
      "                      rename), carry a checksummed, fingerprinted\n"
      "                      envelope, and are scrubbed on startup —\n"
      "                      anything torn, truncated, bit-flipped or\n"
      "                      written by a different build is quarantined,\n"
      "                      never replayed; persistent IO errors degrade\n"
      "                      the daemon to memory-only caching\n"
      "                      (docs/SERVING.md \"Durability & restart\")\n"
      "  --isolate           run each compile in a forked sandbox: a\n"
      "                      crashing compile costs one request, not the\n"
      "                      daemon; crashes retry one degradation-ladder\n"
      "                      rung lower (docs/ROBUSTNESS.md §8)\n"
      "  --isolate-timeout=MS  per-sandbox wall timeout under --isolate\n"
      "                      (SIGKILL past it; default 30000, 0 = none)\n"
      "  --isolate-retries=N crash retries per request under --isolate,\n"
      "                      each one rung lower (default 1)\n"
      "  --read-timeout=MS   per-connection socket read timeout; an idle\n"
      "                      or half-closed client is dropped (default\n"
      "                      30000, 0 = none)\n"
      "  --write-timeout=MS  per-connection socket write timeout (default\n"
      "                      30000, 0 = none)\n"
      "  --max-request=BYTES drop a connection whose buffered request\n"
      "                      line exceeds this, after answering with a\n"
      "                      protocol error (default 4194304)\n"
      "  --fail-inject=SEED:SPEC  arm the *service-wide* failpoints\n"
      "                      (serve.queue.full, serve.worker.crash,\n"
      "                      serve.conn.stall, store.write.short,\n"
      "                      store.write.enospc, store.read.eio,\n"
      "                      store.read.corrupt) for chaos testing;\n"
      "                      per-request fail_inject is separate\n"
      "  --flightrec-dir=DIR write a gcsafe-flightrec-v1 post-mortem dump\n"
      "                      (the flight recorder's last events, naming\n"
      "                      the victim request) into DIR for every\n"
      "                      \"crashed\" response, and install a fatal-\n"
      "                      signal handler that dumps the ring to\n"
      "                      DIR/flightrec-fatal.json; DIR must exist\n"
      "  --trace-chrome=FILE on exit, export the telemetry ring as Chrome\n"
      "                      trace_event JSON: one track per worker,\n"
      "                      per-request span trees keyed by request_id,\n"
      "                      with each compile's opt/gc/vm spans stitched\n"
      "                      under its request (docs/OBSERVABILITY.md §8)\n"
      "  --metrics-text      print the metrics snapshot (uptime, req/s,\n"
      "                      stage latency histograms) to stderr on exit\n"
      "                      as Prometheus-style text exposition\n"
      "  --stats             print the serve.* stats keys to stderr on\n"
      "                      exit (docs/SERVING.md)\n"
      "  --sched-seed=N      arm the deterministic schedule fuzzer: inject\n"
      "                      seeded preemptions (yields/sleeps) at the\n"
      "                      annotated interleave points so a failing\n"
      "                      thread schedule replays from its seed alone\n"
      "                      (docs/ANALYSIS.md; GCSAFE_SCHED_SEED works\n"
      "                      too, the flag wins)\n"
      "  --lockgraph=FILE    on exit, write the runtime lock-rank lint's\n"
      "                      observed acquisition graph as\n"
      "                      gcsafe-lockgraph-v1 JSON; validate with\n"
      "                      check_bench_json.py --lockgraph\n");
}

bool startsWith(const char *Arg, const char *Prefix, const char *&Rest) {
  size_t Len = std::strlen(Prefix);
  if (std::strncmp(Arg, Prefix, Len) != 0)
    return false;
  Rest = Arg + Len;
  return true;
}

struct DaemonOptions {
  uint64_t ReadTimeoutMs = 30000;
  uint64_t WriteTimeoutMs = 30000;
  size_t MaxRequestBytes = 4u << 20;
};

/// Shared between the accept loop and the connection threads.
struct DaemonState {
  std::atomic<bool> Stop{false};
  std::atomic<bool> Drain{false};
  std::atomic<uint64_t> ActiveConns{0};
};

/// Resolves a compile future under the daemon-side deadline guard: even
/// if the request wedged somewhere no watchdog covers, the client gets a
/// typed "deadline" response within the budget plus a small grace.
serve::ServeResult waitForResult(serve::CompileService &Svc,
                                 std::future<serve::ServeResult> &F,
                                 uint64_t DeadlineNs) {
  (void)Svc;
  if (DeadlineNs) {
    uint64_t GraceNs = 500 * 1000000ull;
    if (F.wait_for(std::chrono::nanoseconds(DeadlineNs + GraceNs)) !=
        std::future_status::ready) {
      serve::ServeResult R;
      R.Ok = false;
      R.Status = "deadline";
      R.ExitCode = support::ExitWatchdogTimeout;
      R.Error = "request exceeded its deadline (daemon guard)";
      return R;
    }
  }
  return F.get();
}

/// Handles one already-parsed request against the service. Compile
/// requests run through the worker pool; the rest answer inline.
/// Sets \p Shutdown on a shutdown op, \p Drain on a drain op.
support::Json handleRequest(serve::CompileService &Svc,
                            const serve::ServeRequest &Req,
                            uint64_t ActiveConns, bool &Shutdown,
                            bool &Drain) {
  switch (Req.Op) {
  case serve::ServeOp::Compile: {
    uint64_t DeadlineNs = Req.Compile.DeadlineNs;
    std::future<serve::ServeResult> F = Svc.submit(Req.Compile, Req.UseCache);
    serve::ServeResult R = waitForResult(Svc, F, DeadlineNs);
    // The daemon-guard result is built here, not by the service, so the
    // echoed id is whatever the client sent (possibly nothing).
    if (R.RequestId.empty())
      R.RequestId = Req.Compile.RequestId;
    return serve::buildCompileResponse(Req.Id, R);
  }
  case serve::ServeOp::Stats:
    return serve::buildStatsResponse(Req.Id, Svc.statsSnapshot());
  case serve::ServeOp::Metrics:
    return serve::buildMetricsResponse(Req.Id, Svc.metricsSnapshot());
  case serve::ServeOp::Ping:
    return serve::buildAckResponse(Req.Id, "ping");
  case serve::ServeOp::Health:
    return serve::buildHealthResponse(Req.Id, Svc.health(), ActiveConns);
  case serve::ServeOp::Drain:
    // Stop admitting first, then ack: a compile racing the drain gets a
    // typed "draining" result, never silently-dropped work.
    Svc.drain();
    Drain = true;
    return serve::buildAckResponse(Req.Id, "drain");
  case serve::ServeOp::Shutdown:
    Shutdown = true;
    return serve::buildAckResponse(Req.Id, "shutdown");
  }
  return serve::buildErrorResponse(Req.Id, "unreachable");
}

/// --once: pipeline compile requests through the pool, then write every
/// response in input order. A stats request observes all compiles that
/// preceded it in the input (their futures are resolved first).
int runOnce(serve::CompileService &Svc) {
  struct Pending {
    bool Ready = false;
    support::Json Response;           ///< Valid when Ready.
    std::future<serve::ServeResult> F; ///< Valid when !Ready && IsCompile.
    bool IsCompile = false;
    uint64_t DeadlineNs = 0;
    std::string Id;
    std::string Rid; ///< Client request_id, for the daemon-guard echo.
    serve::ServeOp Op = serve::ServeOp::Ping;
  };
  std::vector<Pending> Order;
  bool Shutdown = false;
  std::string Line;
  while (!Shutdown && std::getline(std::cin, Line)) {
    if (Line.empty())
      continue;
    serve::ServeRequest Req;
    std::string Error;
    Pending P;
    if (!serve::parseRequestLine(Line, Req, Error)) {
      P.Ready = true;
      P.Response = serve::buildErrorResponse(Req.Id, Error);
    } else if (Req.Op == serve::ServeOp::Health) {
      // Readiness is a point-in-time property: answer with the state at
      // read time, not after the whole batch resolved.
      P.Ready = true;
      P.Response = serve::buildHealthResponse(Req.Id, Svc.health(), 0);
    } else if (Req.Op == serve::ServeOp::Compile) {
      P.IsCompile = true;
      P.Id = Req.Id;
      P.Rid = Req.Compile.RequestId;
      P.DeadlineNs = Req.Compile.DeadlineNs;
      P.F = Svc.submit(Req.Compile, Req.UseCache);
    } else {
      P.Id = Req.Id;
      P.Op = Req.Op;
      if (Req.Op == serve::ServeOp::Drain)
        Svc.drain(); // queued compiles still finish; new ones are shed
      if (Req.Op == serve::ServeOp::Shutdown ||
          Req.Op == serve::ServeOp::Drain)
        Shutdown = true; // stop reading; pending compiles still finish
    }
    Order.push_back(std::move(P));
  }
  for (Pending &P : Order) {
    support::Json Response;
    if (P.Ready)
      Response = std::move(P.Response);
    else if (P.IsCompile) {
      serve::ServeResult R = waitForResult(Svc, P.F, P.DeadlineNs);
      if (R.RequestId.empty())
        R.RequestId = P.Rid;
      Response = serve::buildCompileResponse(P.Id, R);
    } else if (P.Op == serve::ServeOp::Stats)
      Response = serve::buildStatsResponse(P.Id, Svc.statsSnapshot());
    else if (P.Op == serve::ServeOp::Metrics)
      // Like stats: a metrics request observes every compile that
      // preceded it in the input.
      Response = serve::buildMetricsResponse(P.Id, Svc.metricsSnapshot());
    else
      Response = serve::buildAckResponse(
          P.Id, P.Op == serve::ServeOp::Shutdown ? "shutdown"
                : P.Op == serve::ServeOp::Drain  ? "drain"
                                                 : "ping");
    std::fputs(Response.dump(0).c_str(), stdout);
    std::fputc('\n', stdout);
  }
  std::fflush(stdout);
  return support::ExitSuccess;
}

void setSocketTimeouts(int Fd, const DaemonOptions &DO) {
  auto Set = [Fd](int Opt, uint64_t Ms) {
    if (!Ms)
      return;
    timeval Tv{};
    Tv.tv_sec = static_cast<time_t>(Ms / 1000);
    Tv.tv_usec = static_cast<suseconds_t>((Ms % 1000) * 1000);
    setsockopt(Fd, SOL_SOCKET, Opt, &Tv, sizeof(Tv));
  };
  Set(SO_RCVTIMEO, DO.ReadTimeoutMs);
  Set(SO_SNDTIMEO, DO.WriteTimeoutMs);
}

/// Writes one response line, honoring the serve.conn.stall failpoint
/// (sleep before the write, so the socket write timeout and the client's
/// read path see a stalled daemon). False when the client is gone or the
/// write timed out.
bool writeResponse(serve::CompileService &Svc, int Fd, std::string Text) {
  if (Svc.injectFault("serve.conn.stall"))
    usleep(100000);
  Text.push_back('\n');
  size_t Off = 0;
  while (Off < Text.size()) {
    ssize_t W = write(Fd, Text.data() + Off, Text.size() - Off);
    if (W <= 0)
      return false;
    Off += static_cast<size_t>(W);
  }
  return true;
}

/// One connection: read lines, answer each in order. A read timeout, a
/// half-closed or vanished client, or an oversized request line ends the
/// connection; none of them touch the daemon. Sets the daemon-wide stop
/// and drain flags through \p State.
void serveConnection(serve::CompileService &Svc, int Fd,
                     const DaemonOptions &DO, DaemonState &State) {
  std::string Buffer;
  char Chunk[4096];
  for (;;) {
    size_t NL;
    while ((NL = Buffer.find('\n')) == std::string::npos) {
      if (DO.MaxRequestBytes && Buffer.size() > DO.MaxRequestBytes) {
        // Answer once with a protocol error, then hang up: a client
        // streaming an unbounded line cannot hold memory hostage.
        writeResponse(Svc, Fd,
                      serve::buildErrorResponse(
                          "", "request line exceeds " +
                                  std::to_string(DO.MaxRequestBytes) +
                                  " bytes")
                          .dump(0));
        return;
      }
      ssize_t N = read(Fd, Chunk, sizeof(Chunk));
      if (N <= 0) // EOF, error, or SO_RCVTIMEO expiry (EAGAIN)
        return;
      Buffer.append(Chunk, static_cast<size_t>(N));
    }
    std::string Line = Buffer.substr(0, NL);
    Buffer.erase(0, NL + 1);
    if (DO.MaxRequestBytes && Line.size() > DO.MaxRequestBytes) {
      // The newline can land in the same chunk that crossed the cap, so
      // a completed line needs the same rejection as a streaming one.
      writeResponse(Svc, Fd,
                    serve::buildErrorResponse(
                        "", "request line exceeds " +
                                std::to_string(DO.MaxRequestBytes) +
                                " bytes")
                        .dump(0));
      return;
    }
    if (Line.empty())
      continue;
    serve::ServeRequest Req;
    std::string Error;
    support::Json Response;
    bool Shutdown = false, Drain = false;
    if (!serve::parseRequestLine(Line, Req, Error))
      Response = serve::buildErrorResponse(Req.Id, Error);
    else
      Response = handleRequest(Svc, Req, State.ActiveConns.load(), Shutdown,
                               Drain);
    bool Wrote = writeResponse(Svc, Fd, Response.dump(0));
    if (Shutdown || Drain) {
      if (Drain)
        State.Drain.store(true);
      State.Stop.store(true);
      return;
    }
    if (!Wrote)
      return;
  }
}

int runDaemon(serve::CompileService &Svc, const std::string &SocketPath,
              const DaemonOptions &DO) {
  int ListenFd = socket(AF_UNIX, SOCK_STREAM, 0);
  if (ListenFd < 0) {
    std::perror("gcsafe-serve: socket");
    return support::ExitError;
  }
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (SocketPath.size() >= sizeof(Addr.sun_path)) {
    std::fprintf(stderr, "gcsafe-serve: socket path too long\n");
    close(ListenFd);
    return support::ExitUsage;
  }
  std::strncpy(Addr.sun_path, SocketPath.c_str(), sizeof(Addr.sun_path) - 1);
  unlink(SocketPath.c_str()); // a stale socket from a dead daemon
  if (bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0 ||
      listen(ListenFd, 64) < 0) {
    std::perror("gcsafe-serve: bind/listen");
    close(ListenFd);
    return support::ExitError;
  }
  std::fprintf(stderr, "gcsafe-serve: listening on %s (%u worker(s))\n",
               SocketPath.c_str(), Svc.options().Workers);

  DaemonState State;
  struct Conn {
    std::thread T;
    std::shared_ptr<std::atomic<bool>> Done;
  };
  std::vector<Conn> Connections;
  // Reap finished connection threads so a long-lived daemon does not
  // accumulate one joinable std::thread per connection ever accepted.
  auto Reap = [&Connections](bool JoinAll) {
    for (size_t I = 0; I < Connections.size();) {
      if (JoinAll || Connections[I].Done->load()) {
        Connections[I].T.join();
        Connections.erase(Connections.begin() + I);
      } else {
        ++I;
      }
    }
  };

  while (!State.Stop.load()) {
    int Fd = accept(ListenFd, nullptr, nullptr);
    if (Fd < 0) {
      if (State.Stop.load())
        break;
      continue;
    }
    Reap(false);
    setSocketTimeouts(Fd, DO);
    auto Done = std::make_shared<std::atomic<bool>>(false);
    Conn C;
    C.Done = Done;
    C.T = std::thread([&Svc, &DO, &State, ListenFd, Fd, Done] {
      State.ActiveConns.fetch_add(1);
      serveConnection(Svc, Fd, DO, State);
      close(Fd);
      State.ActiveConns.fetch_sub(1);
      if (State.Stop.load())
        shutdown(ListenFd, SHUT_RDWR); // unblock accept()
      Done->store(true);
    });
    Connections.push_back(std::move(C));
  }
  Reap(true);
  if (State.Drain.load()) {
    // Graceful retirement: the service already sheds new work ("draining"
    // responses); wait for the queued requests to finish before exiting.
    Svc.waitIdle();
  }
  close(ListenFd);
  unlink(SocketPath.c_str());
  return support::ExitSuccess;
}

} // namespace

int main(int argc, char **argv) {
  serve::ServiceOptions SO;
  DaemonOptions DO;
  support::FaultInjector ServiceFaults;
  std::string SocketPath, ChromePath, LockGraphPath;
  bool Once = false, PrintStats = false, MetricsText = false;
  uint64_t SchedSeed = 0;

  for (int I = 1; I < argc; ++I) {
    const char *Arg = argv[I];
    const char *Rest = nullptr;
    if (startsWith(Arg, "--socket=", Rest)) {
      SocketPath = Rest;
    } else if (!std::strcmp(Arg, "--once")) {
      Once = true;
    } else if (startsWith(Arg, "--workers=", Rest)) {
      SO.Workers = static_cast<unsigned>(std::strtoul(Rest, nullptr, 10));
      if (!SO.Workers) {
        std::fprintf(stderr, "--workers must be positive\n");
        return support::ExitUsage;
      }
    } else if (startsWith(Arg, "--cache-max=", Rest)) {
      SO.CacheMaxEntries = std::strtoull(Rest, nullptr, 10);
      if (!SO.CacheMaxEntries) {
        std::fprintf(stderr, "--cache-max must be positive\n");
        return support::ExitUsage;
      }
    } else if (!std::strcmp(Arg, "--no-cache")) {
      SO.CacheEnabled = false;
    } else if (startsWith(Arg, "--queue-max=", Rest)) {
      SO.QueueMax = std::strtoull(Rest, nullptr, 10);
    } else if (startsWith(Arg, "--store-dir=", Rest)) {
      SO.StoreDir = Rest;
      if (SO.StoreDir.empty()) {
        std::fprintf(stderr, "--store-dir needs a directory\n");
        return support::ExitUsage;
      }
    } else if (!std::strcmp(Arg, "--isolate")) {
      SO.Isolate = true;
    } else if (startsWith(Arg, "--isolate-timeout=", Rest)) {
      SO.IsolateTimeoutMs = std::strtoull(Rest, nullptr, 10);
    } else if (startsWith(Arg, "--isolate-retries=", Rest)) {
      SO.IsolateRetries =
          static_cast<unsigned>(std::strtoul(Rest, nullptr, 10));
    } else if (startsWith(Arg, "--read-timeout=", Rest)) {
      DO.ReadTimeoutMs = std::strtoull(Rest, nullptr, 10);
    } else if (startsWith(Arg, "--write-timeout=", Rest)) {
      DO.WriteTimeoutMs = std::strtoull(Rest, nullptr, 10);
    } else if (startsWith(Arg, "--max-request=", Rest)) {
      DO.MaxRequestBytes = std::strtoull(Rest, nullptr, 10);
    } else if (startsWith(Arg, "--fail-inject=", Rest)) {
      std::string Error;
      if (!support::FaultInjector::parse(Rest, ServiceFaults, Error)) {
        std::fprintf(stderr, "bad --fail-inject spec: %s\n", Error.c_str());
        return support::ExitUsage;
      }
      SO.Faults = &ServiceFaults;
    } else if (startsWith(Arg, "--flightrec-dir=", Rest)) {
      SO.FlightDir = Rest;
    } else if (startsWith(Arg, "--trace-chrome=", Rest)) {
      ChromePath = Rest;
      // The per-request span tree is only interesting with the compiler's
      // own spans nested under it.
      SO.StitchTraces = true;
    } else if (!std::strcmp(Arg, "--metrics-text")) {
      MetricsText = true;
    } else if (!std::strcmp(Arg, "--stats")) {
      PrintStats = true;
    } else if (startsWith(Arg, "--sched-seed=", Rest)) {
      SchedSeed = std::strtoull(Rest, nullptr, 10);
      if (!SchedSeed) {
        std::fprintf(stderr, "--sched-seed must be positive\n");
        return support::ExitUsage;
      }
    } else if (startsWith(Arg, "--lockgraph=", Rest)) {
      LockGraphPath = Rest;
    } else if (!std::strcmp(Arg, "--help") || !std::strcmp(Arg, "-h")) {
      usage();
      return support::ExitSuccess;
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", Arg);
      usage();
      return support::ExitUsage;
    }
  }
  if (Once == !SocketPath.empty()) {
    std::fprintf(stderr,
                 "gcsafe-serve: exactly one of --socket=PATH or --once is "
                 "required\n");
    usage();
    return support::ExitUsage;
  }

  // Arm the schedule fuzzer before any worker thread exists so every
  // interleave point is covered from the first request.
  if (SchedSeed)
    support::ScheduleFuzzer::enable(SchedSeed);
  else
    support::ScheduleFuzzer::enableFromEnv();

  serve::CompileService Svc(SO);
  if (!SO.FlightDir.empty())
    // A fatal signal in the daemon itself (not an isolated child) leaves
    // a post-mortem too. Installed after the service exists; the service
    // outlives every worker, so the recorder pointer stays valid.
    serve::installFlightDump(Svc.flightRecorder(),
                             SO.FlightDir + "/flightrec-fatal.json");
  int Code = Once ? runOnce(Svc) : runDaemon(Svc, SocketPath, DO);
  if (PrintStats) {
    support::Stats S = Svc.statsSnapshot();
    for (const support::Stats::Entry &E : S.entries()) {
      if (E.K == support::Stats::Entry::Kind::Gauge)
        std::fprintf(stderr, "%s=%g\n", E.Path.c_str(), E.Gauge);
      else
        std::fprintf(stderr, "%s=%llu\n", E.Path.c_str(),
                     static_cast<unsigned long long>(E.Count));
    }
  }
  if (MetricsText)
    std::fputs(serve::metricsToPrometheus(Svc.metricsSnapshot()).c_str(),
               stderr);
  if (!ChromePath.empty()) {
    std::string Text =
        serve::flightToChromeJson(Svc.flightRecorder().snapshot()).dump(2);
    Text.push_back('\n');
    if (std::FILE *F = std::fopen(ChromePath.c_str(), "w")) {
      std::fwrite(Text.data(), 1, Text.size(), F);
      std::fclose(F);
    } else {
      std::fprintf(stderr, "gcsafe-serve: cannot write %s\n",
                   ChromePath.c_str());
    }
  }
  if (!LockGraphPath.empty() && !support::writeLockGraph(LockGraphPath))
    std::fprintf(stderr, "gcsafe-serve: cannot write %s\n",
                 LockGraphPath.c_str());
  return Code;
}
