//===- tools/gcsafe-serve.cpp - The persistent compile service -----------===//
//
// Part of the gcsafe project, a reproduction of Boehm, "Simple
// Garbage-Collector-Safety" (PLDI 1996).
//
// A daemon in front of serve::CompileService (docs/SERVING.md): requests
// are line-delimited gcsafe-serve-v1 JSON documents, responses come back
// one line each in request order. Two transports:
//
//   gcsafe-serve --socket=/tmp/gcsafe.sock      # unix-socket daemon
//   gcsafe-serve --once < requests.ndjson       # stdin/stdout, for tests
//
// Compile state is per-request (driver/Request.h); the only cross-request
// state is the content-addressed response cache and the per-function
// verification memo, both keyed purely on content.
//
//===----------------------------------------------------------------------===//

#include "serve/Protocol.h"
#include "support/ExitCodes.h"

#include <atomic>
#include <cstdio>
#include <cstring>
#include <future>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace gcsafe;

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: gcsafe-serve (--socket=PATH | --once) [options]\n"
      "  --socket=PATH       listen for connections on a unix socket;\n"
      "                      one gcsafe-serve-v1 JSON request per line,\n"
      "                      one response line each, in request order\n"
      "  --once              serve a single batch: read requests from\n"
      "                      stdin until EOF, write responses to stdout\n"
      "                      in input order, exit\n"
      "  --workers=N         compile worker threads (default 4)\n"
      "  --cache-max=N       response-cache entry cap (default 1024)\n"
      "  --no-cache          disable the content-addressed response cache\n"
      "                      (requests may still opt out individually\n"
      "                      with \"cache\": false)\n"
      "  --stats             print the serve.* stats keys to stderr on\n"
      "                      exit (docs/SERVING.md)\n");
}

bool startsWith(const char *Arg, const char *Prefix, const char *&Rest) {
  size_t Len = std::strlen(Prefix);
  if (std::strncmp(Arg, Prefix, Len) != 0)
    return false;
  Rest = Arg + Len;
  return true;
}

/// Handles one already-parsed request against the service. Compile
/// requests run through the worker pool; the rest answer inline.
/// Sets \p Shutdown on a shutdown op.
support::Json handleRequest(serve::CompileService &Svc,
                            const serve::ServeRequest &Req, bool &Shutdown) {
  switch (Req.Op) {
  case serve::ServeOp::Compile:
    return serve::buildCompileResponse(
        Req.Id, Svc.submit(Req.Compile, Req.UseCache).get());
  case serve::ServeOp::Stats:
    return serve::buildStatsResponse(Req.Id, Svc.statsSnapshot());
  case serve::ServeOp::Ping:
    return serve::buildAckResponse(Req.Id, "ping");
  case serve::ServeOp::Shutdown:
    Shutdown = true;
    return serve::buildAckResponse(Req.Id, "shutdown");
  }
  return serve::buildErrorResponse(Req.Id, "unreachable");
}

/// --once: pipeline compile requests through the pool, then write every
/// response in input order. A stats request observes all compiles that
/// preceded it in the input (their futures are resolved first).
int runOnce(serve::CompileService &Svc) {
  struct Pending {
    bool Ready = false;
    support::Json Response;           ///< Valid when Ready.
    std::future<serve::ServeResult> F; ///< Valid when !Ready && IsCompile.
    bool IsCompile = false;
    std::string Id;
    serve::ServeOp Op = serve::ServeOp::Ping;
  };
  std::vector<Pending> Order;
  bool Shutdown = false;
  std::string Line;
  while (!Shutdown && std::getline(std::cin, Line)) {
    if (Line.empty())
      continue;
    serve::ServeRequest Req;
    std::string Error;
    Pending P;
    if (!serve::parseRequestLine(Line, Req, Error)) {
      P.Ready = true;
      P.Response = serve::buildErrorResponse(Req.Id, Error);
    } else if (Req.Op == serve::ServeOp::Compile) {
      P.IsCompile = true;
      P.Id = Req.Id;
      P.F = Svc.submit(Req.Compile, Req.UseCache);
    } else {
      P.Id = Req.Id;
      P.Op = Req.Op;
      if (Req.Op == serve::ServeOp::Shutdown)
        Shutdown = true; // stop reading; pending compiles still finish
    }
    Order.push_back(std::move(P));
  }
  for (Pending &P : Order) {
    support::Json Response;
    if (P.Ready)
      Response = std::move(P.Response);
    else if (P.IsCompile)
      Response = serve::buildCompileResponse(P.Id, P.F.get());
    else if (P.Op == serve::ServeOp::Stats)
      Response = serve::buildStatsResponse(P.Id, Svc.statsSnapshot());
    else
      Response = serve::buildAckResponse(
          P.Id, P.Op == serve::ServeOp::Shutdown ? "shutdown" : "ping");
    std::fputs(Response.dump(0).c_str(), stdout);
    std::fputc('\n', stdout);
  }
  std::fflush(stdout);
  return support::ExitSuccess;
}

/// One connection: read lines, answer each in order. Returns true when
/// the client asked for a daemon shutdown.
bool serveConnection(serve::CompileService &Svc, int Fd) {
  std::string Buffer;
  char Chunk[4096];
  bool Shutdown = false;
  for (;;) {
    size_t NL;
    while ((NL = Buffer.find('\n')) == std::string::npos) {
      ssize_t N = read(Fd, Chunk, sizeof(Chunk));
      if (N <= 0)
        return Shutdown;
      Buffer.append(Chunk, static_cast<size_t>(N));
    }
    std::string Line = Buffer.substr(0, NL);
    Buffer.erase(0, NL + 1);
    if (Line.empty())
      continue;
    serve::ServeRequest Req;
    std::string Error;
    support::Json Response;
    if (!serve::parseRequestLine(Line, Req, Error))
      Response = serve::buildErrorResponse(Req.Id, Error);
    else
      Response = handleRequest(Svc, Req, Shutdown);
    std::string Text = Response.dump(0);
    Text.push_back('\n');
    size_t Off = 0;
    while (Off < Text.size()) {
      ssize_t W = write(Fd, Text.data() + Off, Text.size() - Off);
      if (W <= 0)
        return Shutdown;
      Off += static_cast<size_t>(W);
    }
    if (Shutdown)
      return true;
  }
}

int runDaemon(serve::CompileService &Svc, const std::string &SocketPath) {
  int ListenFd = socket(AF_UNIX, SOCK_STREAM, 0);
  if (ListenFd < 0) {
    std::perror("gcsafe-serve: socket");
    return support::ExitError;
  }
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (SocketPath.size() >= sizeof(Addr.sun_path)) {
    std::fprintf(stderr, "gcsafe-serve: socket path too long\n");
    close(ListenFd);
    return support::ExitUsage;
  }
  std::strncpy(Addr.sun_path, SocketPath.c_str(), sizeof(Addr.sun_path) - 1);
  unlink(SocketPath.c_str()); // a stale socket from a dead daemon
  if (bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0 ||
      listen(ListenFd, 64) < 0) {
    std::perror("gcsafe-serve: bind/listen");
    close(ListenFd);
    return support::ExitError;
  }
  std::fprintf(stderr, "gcsafe-serve: listening on %s (%u worker(s))\n",
               SocketPath.c_str(), Svc.options().Workers);

  std::atomic<bool> Stop{false};
  std::vector<std::thread> Connections;
  while (!Stop.load()) {
    int Fd = accept(ListenFd, nullptr, nullptr);
    if (Fd < 0) {
      if (Stop.load())
        break;
      continue;
    }
    Connections.emplace_back([&Svc, &Stop, &SocketPath, ListenFd, Fd] {
      if (serveConnection(Svc, Fd)) {
        Stop.store(true);
        // Unblock accept() so the main loop can exit.
        shutdown(ListenFd, SHUT_RDWR);
      }
      close(Fd);
    });
  }
  for (std::thread &T : Connections)
    T.join();
  close(ListenFd);
  unlink(SocketPath.c_str());
  return support::ExitSuccess;
}

} // namespace

int main(int argc, char **argv) {
  serve::ServiceOptions SO;
  std::string SocketPath;
  bool Once = false, PrintStats = false;

  for (int I = 1; I < argc; ++I) {
    const char *Arg = argv[I];
    const char *Rest = nullptr;
    if (startsWith(Arg, "--socket=", Rest)) {
      SocketPath = Rest;
    } else if (!std::strcmp(Arg, "--once")) {
      Once = true;
    } else if (startsWith(Arg, "--workers=", Rest)) {
      SO.Workers = static_cast<unsigned>(std::strtoul(Rest, nullptr, 10));
      if (!SO.Workers) {
        std::fprintf(stderr, "--workers must be positive\n");
        return support::ExitUsage;
      }
    } else if (startsWith(Arg, "--cache-max=", Rest)) {
      SO.CacheMaxEntries = std::strtoull(Rest, nullptr, 10);
      if (!SO.CacheMaxEntries) {
        std::fprintf(stderr, "--cache-max must be positive\n");
        return support::ExitUsage;
      }
    } else if (!std::strcmp(Arg, "--no-cache")) {
      SO.CacheEnabled = false;
    } else if (!std::strcmp(Arg, "--stats")) {
      PrintStats = true;
    } else if (!std::strcmp(Arg, "--help") || !std::strcmp(Arg, "-h")) {
      usage();
      return support::ExitSuccess;
    } else {
      std::fprintf(stderr, "unknown option '%s'\n", Arg);
      usage();
      return support::ExitUsage;
    }
  }
  if (Once == !SocketPath.empty()) {
    std::fprintf(stderr,
                 "gcsafe-serve: exactly one of --socket=PATH or --once is "
                 "required\n");
    usage();
    return support::ExitUsage;
  }

  serve::CompileService Svc(SO);
  int Code = Once ? runOnce(Svc) : runDaemon(Svc, SocketPath);
  if (PrintStats) {
    support::Stats S = Svc.statsSnapshot();
    for (const support::Stats::Entry &E : S.entries())
      std::fprintf(stderr, "%s=%llu\n", E.Path.c_str(),
                   static_cast<unsigned long long>(E.Count));
  }
  return Code;
}
