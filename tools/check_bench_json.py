#!/usr/bin/env python3
"""Validate gcsafe machine-readable reports against their documented schemas.

Schemas (see docs/OBSERVABILITY.md):

  gcsafe-bench-v1       BENCH_<name>.json, written by every bench_* binary
  gcsafe-run-report-v1  gcsafe-cc --stats-json
  gcsafe-trace-v1       gcsafe-cc --trace-json
  gcsafe-profile-v1     gcsafe-cc --profile-json
  gcsafe-lint-v1        gcsafe-cc --lint-json (docs/ANALYSIS.md)
  gcsafe-batch-v1       gcsafe-batch --summary (docs/ROBUSTNESS.md §6)
  gcsafe-serve-v1       gcsafe-serve response lines (docs/SERVING.md)
  gcsafe-store-v1       durable-store scrub.json reports (docs/SERVING.md
                        §"Durability & restart")

Usage:
  check_bench_json.py FILE [FILE...]   validate the named report files
  check_bench_json.py --scan DIR       validate every BENCH_*.json under DIR
  check_bench_json.py --chrome FILE    validate a Chrome trace_event file
                                       (gcsafe-cc --trace-chrome output)
  check_bench_json.py --lint FILE      validate FILE and require it to be a
                                       gcsafe-lint-v1 report
  check_bench_json.py --batch FILE     validate FILE as a gcsafe-batch-v1
                                       summary; --expect-status SUBSTR=STATUS
                                       additionally pins one input's outcome
  check_bench_json.py --serve FILE     validate FILE as line-delimited
                                       gcsafe-serve-v1 responses (the output
                                       of gcsafe-serve --once or a captured
                                       socket session)
  check_bench_json.py --lockgraph FILE validate FILE as a gcsafe-lockgraph-v1
                                       lock-acquisition graph (gcsafe-serve
                                       --lockgraph output) and prove it
                                       acyclic and violation-free
  check_bench_json.py --store FILE     validate FILE as a gcsafe-store-v1
                                       scrub report (the store's scrub.json):
                                       totals must balance and every
                                       quarantined entry must carry a known
                                       reason token

Files are dispatched on their top-level "schema" field, so the same checker
covers all four formats; Chrome traces carry no schema field and are named
explicitly with --chrome. Exits nonzero (listing each problem) if any file
fails; a --scan that finds no BENCH_*.json at all is also an error, so the
ctest wiring catches a bench that silently stopped emitting its report.
"""

import argparse
import json
import numbers
import sys
from pathlib import Path


class SchemaError(Exception):
    pass


def expect(cond, path, message):
    if not cond:
        raise SchemaError(f"{path}: {message}")


def expect_keys(obj, path, required, optional=()):
    expect(isinstance(obj, dict), path, "expected an object")
    for key in required:
        expect(key in obj, path, f"missing required key '{key}'")
    allowed = set(required) | set(optional)
    for key in obj:
        expect(key in allowed, path, f"unexpected key '{key}'")


def expect_num(obj, path, key, integer=False):
    value = obj[key]
    expect(
        isinstance(value, numbers.Real) and not isinstance(value, bool),
        f"{path}.{key}", f"expected a number, got {type(value).__name__}")
    if integer:
        expect(isinstance(value, int), f"{path}.{key}",
               f"expected an integer, got {value!r}")


def expect_str(obj, path, key):
    expect(isinstance(obj[key], str), f"{path}.{key}",
           f"expected a string, got {type(obj[key]).__name__}")


# --- gcsafe-bench-v1 --------------------------------------------------------

def check_bench(doc):
    expect_keys(doc, "$", ["schema", "bench", "rows"])
    expect_str(doc, "$", "bench")
    expect(doc["bench"], "$.bench", "bench name must be non-empty")
    rows = doc["rows"]
    expect(isinstance(rows, list), "$.rows", "expected an array")
    expect(rows, "$.rows", "a bench report must contain at least one row")
    for i, row in enumerate(rows):
        path = f"$.rows[{i}]"
        expect_keys(row, path, ["name", "metrics"])
        expect_str(row, path, "name")
        metrics = row["metrics"]
        expect(isinstance(metrics, dict), f"{path}.metrics",
               "expected an object")
        expect(metrics, f"{path}.metrics", "metrics must be non-empty")
        for key in metrics:
            expect_num(metrics, f"{path}.metrics", key)


# --- gcsafe-trace-v1 --------------------------------------------------------

def check_trace(doc):
    expect_keys(doc, "$", ["schema", "capacity", "emitted", "dropped",
                           "events"])
    for key in ("capacity", "emitted", "dropped"):
        expect_num(doc, "$", key, integer=True)
    events = doc["events"]
    expect(isinstance(events, list), "$.events", "expected an array")
    last_t = None
    for i, ev in enumerate(events):
        path = f"$.events[{i}]"
        expect_keys(ev, path, ["cat", "name", "t_ns", "value", "aux"],
                    optional=["detail"])
        expect_str(ev, path, "cat")
        expect_str(ev, path, "name")
        for key in ("t_ns", "value", "aux"):
            expect_num(ev, path, key, integer=True)
        if "detail" in ev:
            expect_str(ev, path, "detail")
        if last_t is not None:
            expect(ev["t_ns"] >= last_t, f"{path}.t_ns",
                   "trace events must be in nondecreasing time order")
        last_t = ev["t_ns"]


# --- gcsafe-run-report-v1 ---------------------------------------------------

GC_KEYS = ["collections", "alloc_count", "alloc_bytes", "heap_pages",
           "live_bytes_after_last_gc", "freed_objects_last_gc", "mark_ns",
           "sweep_ns", "words_scanned", "pointer_hits", "marked_objects",
           "interior_pointer_hits", "false_retention_candidates", "oom",
           "audit", "deadline_exceeded", "events"]

GC_OOM_KEYS = ["emergency_collections", "retries", "callback_invocations",
               "alloc_failures", "faults_injected", "segment_backoffs"]

GC_AUDIT_KEYS = ["runs", "violations"]

GC_EVENT_KEYS = ["index", "mark_ns", "sweep_ns", "pages_scanned",
                 "words_scanned", "pointer_hits", "marked_objects",
                 "freed_objects", "live_bytes", "interior_hits",
                 "false_retention_candidates"]

ANNOTATOR_KEYS = ["keep_lives", "incdec_expansions",
                  "compound_assign_expansions", "temps_introduced",
                  "skipped_copies", "skipped_call_results",
                  "skipped_non_heap", "skipped_at_calls_only",
                  "slow_base_substitutions", "unhandled_complex_lvalues"]

ATTRIBUTION_KEYS = ["user", "keep_live", "checks", "allocator", "spill"]


def check_counter_tree(obj, path, strings_ok=False):
    """phases_ns / passes: nested objects with numeric leaves. The robust
    subtree also carries string leaves (robust.ladder.rung_name)."""
    expect(isinstance(obj, dict), path, "expected an object")
    for key, value in obj.items():
        if isinstance(value, dict):
            check_counter_tree(value, f"{path}.{key}", strings_ok)
        elif strings_ok and isinstance(value, str):
            pass
        else:
            expect_num(obj, path, key)


def check_run_report(doc):
    expect_keys(doc, "$", ["schema", "input", "mode", "machine", "compile"],
                optional=["run"])
    expect_str(doc, "$", "input")
    expect_str(doc, "$", "mode")
    expect_str(doc, "$", "machine")

    compile_ = doc["compile"]
    expect_keys(compile_, "$.compile",
                ["ok", "code_size_units", "phases_ns", "annotator", "passes"],
                optional=["robust"])
    if "robust" in compile_:
        check_counter_tree(compile_["robust"], "$.compile.robust",
                           strings_ok=True)
    expect(isinstance(compile_["ok"], bool), "$.compile.ok",
           "expected a bool")
    expect_num(compile_, "$.compile", "code_size_units", integer=True)
    check_counter_tree(compile_["phases_ns"], "$.compile.phases_ns")
    expect_keys(compile_["annotator"], "$.compile.annotator", ANNOTATOR_KEYS)
    for key in ANNOTATOR_KEYS:
        expect_num(compile_["annotator"], "$.compile.annotator", key,
                   integer=True)
    check_counter_tree(compile_["passes"], "$.compile.passes")

    if "run" not in doc:
        return
    run = doc["run"]
    expect_keys(run, "$.run",
                ["ok", "exit_code", "output", "instructions", "cycles",
                 "cycle_attribution", "keep_lives_executed", "kills_executed",
                 "checks", "gc"],
                optional=["error", "watchdog_timeout"])
    expect(isinstance(run["ok"], bool), "$.run.ok", "expected a bool")
    if "watchdog_timeout" in run:
        expect(isinstance(run["watchdog_timeout"], bool),
               "$.run.watchdog_timeout", "expected a bool")
    expect_num(run, "$.run", "exit_code", integer=True)
    expect_str(run, "$.run", "output")
    for key in ("instructions", "cycles", "keep_lives_executed",
                "kills_executed"):
        expect_num(run, "$.run", key, integer=True)

    attribution = run["cycle_attribution"]
    expect_keys(attribution, "$.run.cycle_attribution", ATTRIBUTION_KEYS)
    for key in ATTRIBUTION_KEYS:
        expect_num(attribution, "$.run.cycle_attribution", key, integer=True)
    expect(sum(attribution.values()) == run["cycles"],
           "$.run.cycle_attribution",
           f"attribution sums to {sum(attribution.values())}, "
           f"total cycles is {run['cycles']}")

    checks = run["checks"]
    expect_keys(checks, "$.run.checks",
                ["performed", "violations", "freed_accesses"])
    for key in ("performed", "violations", "freed_accesses"):
        expect_num(checks, "$.run.checks", key, integer=True)

    gc = run["gc"]
    expect_keys(gc, "$.run.gc", GC_KEYS)
    for key in GC_KEYS:
        if key not in ("events", "oom", "audit"):
            expect_num(gc, "$.run.gc", key, integer=True)
    expect_keys(gc["oom"], "$.run.gc.oom", GC_OOM_KEYS)
    for key in GC_OOM_KEYS:
        expect_num(gc["oom"], "$.run.gc.oom", key, integer=True)
    expect_keys(gc["audit"], "$.run.gc.audit", GC_AUDIT_KEYS)
    for key in GC_AUDIT_KEYS:
        expect_num(gc["audit"], "$.run.gc.audit", key, integer=True)
    events = gc["events"]
    expect(isinstance(events, list), "$.run.gc.events", "expected an array")
    for i, ev in enumerate(events):
        path = f"$.run.gc.events[{i}]"
        expect_keys(ev, path, GC_EVENT_KEYS)
        for key in GC_EVENT_KEYS:
            expect_num(ev, path, key, integer=True)


# --- gcsafe-batch-v1 --------------------------------------------------------

BATCH_STATUSES = {"ok", "degraded", "failed"}
BATCH_OUTCOMES = {"ok", "degraded", "error", "safety", "timeout", "signal",
                  "usage", "overloaded", "crashed"}
BATCH_RUNGS = {"full", "quarantined", "peephole", "unoptimized"}


def check_batch(doc):
    # "service" appears when the summary came from gcsafe-batch --service:
    # the in-process compile service's serve.* counters (docs/SERVING.md).
    expect_keys(doc, "$", ["schema", "mode", "jobs", "timeout_ms", "retries",
                           "inputs", "totals"], optional=["service"])
    if "service" in doc:
        check_serve_stats(doc["service"], "$.service")
    expect_str(doc, "$", "mode")
    for key in ("jobs", "timeout_ms", "retries"):
        expect_num(doc, "$", key, integer=True)
    inputs = doc["inputs"]
    expect(isinstance(inputs, list), "$.inputs", "expected an array")
    expect(inputs, "$.inputs", "a batch report must contain inputs")
    counts = {"ok": 0, "degraded": 0, "failed": 0}
    attempts_total = 0
    for i, entry in enumerate(inputs):
        path = f"$.inputs[{i}]"
        expect_keys(entry, path, ["input", "status", "attempts"])
        expect_str(entry, path, "input")
        expect(entry["status"] in BATCH_STATUSES, f"{path}.status",
               f"unknown status {entry['status']!r} "
               f"(known: {', '.join(sorted(BATCH_STATUSES))})")
        counts[entry["status"]] += 1
        attempts = entry["attempts"]
        expect(isinstance(attempts, list), f"{path}.attempts",
               "expected an array")
        expect(attempts, f"{path}.attempts",
               "every input must record at least one attempt")
        attempts_total += len(attempts)
        for j, att in enumerate(attempts):
            apath = f"{path}.attempts[{j}]"
            expect_keys(att, apath,
                        ["rung", "outcome", "exit_code", "signal",
                         "duration_ms"], optional=["detail"])
            expect(att["rung"] in BATCH_RUNGS, f"{apath}.rung",
                   f"unknown rung {att['rung']!r}")
            expect(att["outcome"] in BATCH_OUTCOMES, f"{apath}.outcome",
                   f"unknown outcome {att['outcome']!r}")
            for key in ("exit_code", "signal", "duration_ms"):
                expect_num(att, apath, key, integer=True)
            if "detail" in att:
                expect_str(att, apath, "detail")
        # Only the last attempt may have succeeded: earlier ones are the
        # failures that triggered the retries.
        for j, att in enumerate(attempts[:-1]):
            expect(att["outcome"] not in ("ok", "degraded"),
                   f"{path}.attempts[{j}].outcome",
                   "a non-final attempt cannot have succeeded")
    totals = doc["totals"]
    expect_keys(totals, "$.totals",
                ["inputs", "ok", "degraded", "failed", "attempts", "retries",
                 "timeouts", "signals"])
    for key in ("inputs", "ok", "degraded", "failed", "attempts", "retries",
                "timeouts", "signals"):
        expect_num(totals, "$.totals", key, integer=True)
    expect(totals["inputs"] == len(inputs), "$.totals.inputs",
           f"totals.inputs is {totals['inputs']}, "
           f"inputs array has {len(inputs)}")
    for key in ("ok", "degraded", "failed"):
        expect(totals[key] == counts[key], f"$.totals.{key}",
               f"totals.{key} is {totals[key]}, counted {counts[key]}")
    expect(totals["attempts"] == attempts_total, "$.totals.attempts",
           f"totals.attempts is {totals['attempts']}, "
           f"counted {attempts_total}")
    expect(totals["retries"] == attempts_total - len(inputs),
           "$.totals.retries",
           f"totals.retries is {totals['retries']}, attempts minus inputs "
           f"is {attempts_total - len(inputs)}")


# --- gcsafe-serve-v1 --------------------------------------------------------

SERVE_OPS = {"compile", "stats", "metrics", "ping", "health", "drain",
             "shutdown", "error"}

# Service-level dispositions a compile response may carry in "status"
# (docs/SERVING.md §"Operating under load"); absent on a normal compile.
SERVE_STATUSES = {"overloaded", "deadline", "crashed", "draining", "shutdown"}


# --- gcsafe-metrics-v1 / gcsafe-flightrec-v1 --------------------------------

# The latency stages CompileService::metricsSnapshot always reports
# (docs/OBSERVABILITY.md §8).
METRICS_STAGES = ["queue_wait", "cache_lookup", "compile", "isolate", "e2e"]

FLIGHTREC_REASONS = {"crash", "signal"}


def check_histogram(obj, path):
    """One support::Histogram serialization: monotone finite bounds with a
    trailing "inf" overflow bucket, sum-of-bucket-counts == count, and
    percentile ordering p50 <= p90 <= p99 <= max."""
    expect(isinstance(obj, dict), path, "expected an object")
    expect_keys(obj, path, ["count", "sum_ns", "min_ns", "max_ns", "p50_ns",
                            "p90_ns", "p99_ns", "buckets"])
    for key in ("count", "sum_ns", "min_ns", "max_ns", "p50_ns", "p90_ns",
                "p99_ns"):
        expect_num(obj, path, key, integer=True)
    buckets = obj["buckets"]
    expect(isinstance(buckets, list) and buckets, f"{path}.buckets",
           "expected a non-empty array")
    prev_le = None
    total = 0
    for i, bucket in enumerate(buckets):
        bpath = f"{path}.buckets[{i}]"
        expect_keys(bucket, bpath, ["le_ns", "count"])
        expect_num(bucket, bpath, "count", integer=True)
        total += bucket["count"]
        le = bucket["le_ns"]
        if i == len(buckets) - 1:
            expect(le == "inf", f"{bpath}.le_ns",
                   f"the final bucket must be the 'inf' overflow, got {le!r}")
        else:
            expect(isinstance(le, int) and not isinstance(le, bool),
                   f"{bpath}.le_ns", "expected an integer bound")
            expect(prev_le is None or le > prev_le, f"{bpath}.le_ns",
                   f"bucket bounds must be strictly increasing "
                   f"({le} after {prev_le})")
            prev_le = le
    expect(total == obj["count"], f"{path}.buckets",
           f"bucket counts sum to {total}, but count is {obj['count']}")
    expect(obj["min_ns"] <= obj["max_ns"], path,
           f"min_ns {obj['min_ns']} > max_ns {obj['max_ns']}")
    expect(obj["p50_ns"] <= obj["p90_ns"] <= obj["p99_ns"] <= obj["max_ns"],
           path,
           f"percentiles must be ordered p50 <= p90 <= p99 <= max, got "
           f"{obj['p50_ns']} / {obj['p90_ns']} / {obj['p99_ns']} / "
           f"{obj['max_ns']}")


def check_metrics(doc, path="$"):
    """One gcsafe-metrics-v1 snapshot (the "metrics" op's payload, also
    valid as a standalone file)."""
    expect(isinstance(doc, dict), path, "expected an object")
    expect_keys(doc, path, ["schema", "uptime_ns", "requests", "rate_rps",
                            "queue", "stages", "store"])
    expect(doc["schema"] == "gcsafe-metrics-v1", f"{path}.schema",
           f"expected gcsafe-metrics-v1, got {doc.get('schema')!r}")
    expect_num(doc, path, "uptime_ns", integer=True)
    expect(doc["uptime_ns"] > 0, f"{path}.uptime_ns", "must be positive")
    expect_num(doc, path, "requests", integer=True)
    expect_num(doc, path, "rate_rps")
    queue = doc["queue"]
    expect_keys(queue, f"{path}.queue", ["depth", "peak", "shed"])
    for key in ("depth", "peak", "shed"):
        expect_num(queue, f"{path}.queue", key, integer=True)
    stages = doc["stages"]
    expect_keys(stages, f"{path}.stages", METRICS_STAGES)
    for stage in METRICS_STAGES:
        check_histogram(stages[stage], f"{path}.stages.{stage}")
    check_store_stats(doc["store"], f"{path}.store")


def check_store_stats(obj, path):
    """The serve.store.* counter block (docs/OBSERVABILITY.md): always
    present — all-zero without a --store-dir — so consumers see one
    shape. degraded is a 0/1 gauge (stats serializes gauges as floats)."""
    expect(isinstance(obj, dict), path, "expected an object")
    expect_keys(obj, path, ["hits", "misses", "writes", "scrubbed",
                            "quarantined", "io_errors", "degraded"])
    for key in ("hits", "misses", "writes", "scrubbed", "quarantined",
                "io_errors"):
        expect_num(obj, path, key, integer=True)
    expect_num(obj, path, "degraded")
    expect(float(obj["degraded"]) in (0.0, 1.0), f"{path}.degraded",
           f"expected a 0/1 gauge, got {obj['degraded']!r}")


def check_flightrec(doc, path="$"):
    """One gcsafe-flightrec-v1 post-mortem dump: the flight recorder's
    surviving events in sequence order, with the attributed victim request
    named at the top and present in the event stream for crash dumps."""
    expect(isinstance(doc, dict), path, "expected an object")
    expect_keys(doc, path, ["schema", "reason", "signal", "request_id",
                            "trace_id", "recorded", "events"])
    expect(doc["schema"] == "gcsafe-flightrec-v1", f"{path}.schema",
           f"expected gcsafe-flightrec-v1, got {doc.get('schema')!r}")
    expect(doc["reason"] in FLIGHTREC_REASONS, f"{path}.reason",
           f"unknown reason {doc['reason']!r} "
           f"(known: {', '.join(sorted(FLIGHTREC_REASONS))})")
    expect_num(doc, path, "signal", integer=True)
    expect_str(doc, path, "request_id")
    expect_str(doc, path, "trace_id")
    expect_num(doc, path, "recorded", integer=True)
    events = doc["events"]
    expect(isinstance(events, list), f"{path}.events", "expected an array")
    prev_seq = 0
    trace_ids = set()
    for i, ev in enumerate(events):
        epath = f"{path}.events[{i}]"
        expect_keys(ev, epath, ["seq", "t_ns", "worker", "cat", "stage",
                                "request_id", "value"])
        for key in ("seq", "t_ns", "worker", "value"):
            expect_num(ev, epath, key, integer=True)
        for key in ("cat", "stage", "request_id"):
            expect_str(ev, epath, key)
        expect(ev["seq"] > prev_seq, f"{epath}.seq",
               f"event sequence must be strictly increasing "
               f"({ev['seq']} after {prev_seq})")
        prev_seq = ev["seq"]
        trace_ids.add(ev["request_id"])
    if doc["reason"] == "crash":
        expect(doc["request_id"] != "", f"{path}.request_id",
               "a crash dump must name the attributed request")
        expect(doc["trace_id"] in trace_ids, f"{path}.trace_id",
               f"the attributed trace id {doc['trace_id']!r} does not "
               f"appear in the dumped events")


def check_serve_stats(obj, path):
    """The serve.* counter tree: a stats-op "serve" member or a batch
    summary's "service" member (docs/SERVING.md)."""
    expect_keys(obj, path, ["workers", "uptime_ns", "requests", "responses",
                            "queue", "deadline", "isolate", "cache",
                            "verify_memo", "store"])
    expect_num(obj, path, "workers", integer=True)
    expect_num(obj, path, "uptime_ns", integer=True)
    expect_num(obj, path, "requests", integer=True)
    responses = obj["responses"]
    expect_keys(responses, f"{path}.responses", ["ok", "error", "degraded"])
    for key in ("ok", "error", "degraded"):
        expect_num(responses, f"{path}.responses", key, integer=True)
    queue = obj["queue"]
    expect_keys(queue, f"{path}.queue", ["depth", "peak", "shed"])
    # depth is a sampled gauge (serialized as a float); peak/shed are
    # true counters.
    expect_num(queue, f"{path}.queue", "depth")
    for key in ("peak", "shed"):
        expect_num(queue, f"{path}.queue", key, integer=True)
    deadline = obj["deadline"]
    expect_keys(deadline, f"{path}.deadline", ["expired"])
    expect_num(deadline, f"{path}.deadline", "expired", integer=True)
    isolate = obj["isolate"]
    expect_keys(isolate, f"{path}.isolate",
                ["requests", "crashes", "retries", "timeouts"])
    for key in ("requests", "crashes", "retries", "timeouts"):
        expect_num(isolate, f"{path}.isolate", key, integer=True)
    cache = obj["cache"]
    expect_keys(cache, f"{path}.cache",
                ["hits", "misses", "insertions", "evictions", "entries",
                 "bytes"])
    for key in ("hits", "misses", "insertions", "evictions", "entries",
                "bytes"):
        expect_num(cache, f"{path}.cache", key, integer=True)
    memo = obj["verify_memo"]
    expect_keys(memo, f"{path}.verify_memo", ["hits", "misses", "entries"])
    for key in ("hits", "misses", "entries"):
        expect_num(memo, f"{path}.verify_memo", key, integer=True)
    check_store_stats(obj["store"], f"{path}.store")


def check_serve_response(doc, path="$"):
    """One gcsafe-serve-v1 response document (one output line of
    gcsafe-serve). Compile responses embed full gcsafe-run-report-v1 /
    gcsafe-lint-v1 documents, validated with the same checkers as the
    standalone files."""
    expect(isinstance(doc, dict), path, "expected an object")
    expect("schema" in doc, path, "missing required key 'schema'")
    expect(doc["schema"] == "gcsafe-serve-v1", f"{path}.schema",
           f"expected gcsafe-serve-v1, got {doc['schema']!r}")
    for key in ("id", "op"):
        expect(key in doc, path, f"missing required key '{key}'")
        expect_str(doc, path, key)
    expect("ok" in doc, path, "missing required key 'ok'")
    expect(isinstance(doc["ok"], bool), f"{path}.ok", "expected a bool")
    op = doc["op"]
    expect(op in SERVE_OPS, f"{path}.op",
           f"unknown op {op!r} (known: {', '.join(sorted(SERVE_OPS))})")
    if op == "compile":
        expect_keys(doc, path,
                    ["schema", "id", "op", "ok", "cached", "exit_code",
                     "degraded", "rung", "quarantined", "cache_key"],
                    optional=["request_id", "status", "error", "report",
                              "lint"])
        if "request_id" in doc:
            expect_str(doc, path, "request_id")
            expect(doc["request_id"] != "", f"{path}.request_id",
                   "request_id, when present, must be non-empty")
        if "status" in doc:
            expect_str(doc, path, "status")
            expect(doc["status"] in SERVE_STATUSES, f"{path}.status",
                   f"unknown status {doc['status']!r} "
                   f"(known: {', '.join(sorted(SERVE_STATUSES))})")
            expect(doc["ok"] is False, f"{path}.ok",
                   "a typed-status compile response must have ok=false")
        for key in ("cached", "degraded"):
            expect(isinstance(doc[key], bool), f"{path}.{key}",
                   "expected a bool")
        expect_num(doc, path, "exit_code", integer=True)
        expect_str(doc, path, "rung")
        expect(doc["rung"] in BATCH_RUNGS, f"{path}.rung",
               f"unknown rung {doc['rung']!r}")
        expect_str(doc, path, "cache_key")
        quarantined = doc["quarantined"]
        expect(isinstance(quarantined, list), f"{path}.quarantined",
               "expected an array")
        for i, name in enumerate(quarantined):
            expect(isinstance(name, str), f"{path}.quarantined[{i}]",
                   "expected a string")
        if "error" in doc:
            expect_str(doc, path, "error")
        if "report" in doc:
            expect(isinstance(doc["report"], dict)
                   and doc["report"].get("schema") == "gcsafe-run-report-v1",
                   f"{path}.report",
                   "expected an embedded gcsafe-run-report-v1 document")
            check_run_report(doc["report"])
        if "lint" in doc:
            expect(isinstance(doc["lint"], dict)
                   and doc["lint"].get("schema") == "gcsafe-lint-v1",
                   f"{path}.lint",
                   "expected an embedded gcsafe-lint-v1 document")
            check_lint(doc["lint"])
    elif op == "stats":
        expect_keys(doc, path, ["schema", "id", "op", "ok", "serve"])
        check_serve_stats(doc["serve"], f"{path}.serve")
    elif op == "metrics":
        expect_keys(doc, path, ["schema", "id", "op", "ok", "metrics"])
        expect(isinstance(doc["metrics"], dict)
               and doc["metrics"].get("schema") == "gcsafe-metrics-v1",
               f"{path}.metrics",
               "expected an embedded gcsafe-metrics-v1 document")
        check_metrics(doc["metrics"], f"{path}.metrics")
    elif op == "health":
        expect_keys(doc, path,
                    ["schema", "id", "op", "ok", "ready", "workers",
                     "queue_depth", "queue_max", "draining", "isolate",
                     "connections"])
        for key in ("ready", "draining", "isolate"):
            expect(isinstance(doc[key], bool), f"{path}.{key}",
                   "expected a bool")
        for key in ("workers", "queue_depth", "queue_max", "connections"):
            expect_num(doc, path, key, integer=True)
    elif op == "error":
        expect_keys(doc, path, ["schema", "id", "op", "ok", "error"])
        expect_str(doc, path, "error")
        expect(doc["ok"] is False, f"{path}.ok",
               "an error response must have ok=false")
    else:  # ping / drain / shutdown acks carry only the head
        expect_keys(doc, path, ["schema", "id", "op", "ok"])


def check_serve_file(path):
    """Line-delimited gcsafe-serve-v1 responses; empty lines are skipped,
    an empty file is an error (a session always answers something)."""
    try:
        text = Path(path).read_text()
    except OSError as exc:
        return f"{path}: {exc}"
    lines = [l for l in text.splitlines() if l.strip()]
    if not lines:
        return f"{path}: no response lines found"
    for n, line in enumerate(lines, 1):
        try:
            doc = json.loads(line)
        except json.JSONDecodeError as exc:
            return f"{path}:{n}: {exc}"
        try:
            check_serve_response(doc, "$")
        except SchemaError as exc:
            return f"{path}:{n}: [gcsafe-serve-v1] {exc}"
    return None


# --- gcsafe-profile-v1 ------------------------------------------------------

SITE_KEYS = ["id", "function", "inst_index", "kind", "allocs",
             "bytes_requested", "bytes_padded", "freed", "live_bytes",
             "live_objects", "peak_live_bytes", "interior_hits",
             "false_retentions", "age_histogram"]


def check_profile(doc):
    expect_keys(doc, "$", ["schema", "input", "mode", "machine",
                           "sample_period_cycles", "heap", "cycles"])
    for key in ("input", "mode", "machine"):
        expect_str(doc, "$", key)
    expect_num(doc, "$", "sample_period_cycles", integer=True)

    heap = doc["heap"]
    expect_keys(heap, "$.heap", ["live_bytes_after_last_gc", "gc_snapshots",
                                 "tracked_live_objects", "sites"])
    for key in ("live_bytes_after_last_gc", "gc_snapshots",
                "tracked_live_objects"):
        expect_num(heap, "$.heap", key, integer=True)
    sites = heap["sites"]
    expect(isinstance(sites, list), "$.heap.sites", "expected an array")
    live_sum = 0
    for i, site in enumerate(sites):
        path = f"$.heap.sites[{i}]"
        expect_keys(site, path, SITE_KEYS)
        expect_str(site, path, "function")
        expect_str(site, path, "kind")
        for key in SITE_KEYS:
            if key not in ("function", "kind", "age_histogram"):
                expect_num(site, path, key, integer=True)
        expect(site["id"] == i, f"{path}.id",
               f"site ids must be dense and ordered (got {site['id']})")
        ages = site["age_histogram"]
        expect(isinstance(ages, list) and len(ages) == 8,
               f"{path}.age_histogram", "expected an array of 8 buckets")
        for j, bucket in enumerate(ages):
            expect(isinstance(bucket, int) and not isinstance(bucket, bool),
                   f"{path}.age_histogram[{j}]", "expected an integer")
        expect(sum(ages) == site["freed"], f"{path}.age_histogram",
               f"age buckets sum to {sum(ages)}, freed is {site['freed']}")
        live_sum += site["live_bytes"]
    # The attribution invariant: every live byte the sweep counted belongs
    # to exactly one site (with snapshots, i.e. at least one collection).
    if heap["gc_snapshots"] > 0:
        expect(live_sum == heap["live_bytes_after_last_gc"], "$.heap.sites",
               f"per-site live_bytes sum to {live_sum}, collector reports "
               f"{heap['live_bytes_after_last_gc']}")

    cycles = doc["cycles"]
    expect_keys(cycles, "$.cycles", ["sampled_cycles", "samples", "functions",
                                     "folded"])
    for key in ("sampled_cycles", "samples"):
        expect_num(cycles, "$.cycles", key, integer=True)
    functions = cycles["functions"]
    expect(isinstance(functions, list), "$.cycles.functions",
           "expected an array")
    self_sum = 0
    for i, fn in enumerate(functions):
        path = f"$.cycles.functions[{i}]"
        expect_keys(fn, path, ["name", "self_cycles", "by_kind"])
        expect_str(fn, path, "name")
        expect_num(fn, path, "self_cycles", integer=True)
        by_kind = fn["by_kind"]
        expect(isinstance(by_kind, dict), f"{path}.by_kind",
               "expected an object")
        for key in by_kind:
            expect_num(by_kind, f"{path}.by_kind", key, integer=True)
        expect(sum(by_kind.values()) == fn["self_cycles"], f"{path}.by_kind",
               f"by_kind sums to {sum(by_kind.values())}, self_cycles is "
               f"{fn['self_cycles']}")
        self_sum += fn["self_cycles"]
    expect(self_sum == cycles["sampled_cycles"], "$.cycles.functions",
           f"per-function self_cycles sum to {self_sum}, sampled total is "
           f"{cycles['sampled_cycles']}")
    folded = cycles["folded"]
    expect(isinstance(folded, list), "$.cycles.folded", "expected an array")
    folded_sum = 0
    for i, entry in enumerate(folded):
        path = f"$.cycles.folded[{i}]"
        expect_keys(entry, path, ["stack", "cycles"])
        expect_str(entry, path, "stack")
        expect(entry["stack"], f"{path}.stack", "stack must be non-empty")
        expect_num(entry, path, "cycles", integer=True)
        folded_sum += entry["cycles"]
    expect(folded_sum == cycles["sampled_cycles"], "$.cycles.folded",
           f"folded stacks sum to {folded_sum}, sampled total is "
           f"{cycles['sampled_cycles']}")


# --- gcsafe-lint-v1 ---------------------------------------------------------

LINT_KINDS = {"kill_live_register", "base_killed", "base_clobbered",
              "kill_missing", "kill_spurious", "keep_live_dropped",
              "structure"}

LINT_DIAG_KEYS = ["function", "block", "index", "line", "pass", "kind",
                  "derived", "base", "message"]


def check_lint(doc):
    expect_keys(doc, "$", ["schema", "input", "mode", "verify", "clean",
                           "diagnostics"])
    expect_str(doc, "$", "input")
    expect_str(doc, "$", "mode")
    expect(doc["verify"] in ("final", "each-pass"), "$.verify",
           f"expected 'final' or 'each-pass', got {doc['verify']!r}")
    expect(isinstance(doc["clean"], bool), "$.clean", "expected a bool")
    diags = doc["diagnostics"]
    expect(isinstance(diags, list), "$.diagnostics", "expected an array")
    expect(doc["clean"] == (len(diags) == 0), "$.clean",
           "clean flag must match diagnostics being empty")
    for i, diag in enumerate(diags):
        path = f"$.diagnostics[{i}]"
        expect_keys(diag, path, LINT_DIAG_KEYS)
        expect_str(diag, path, "function")
        expect_str(diag, path, "pass")
        expect_str(diag, path, "message")
        expect(diag["message"], f"{path}.message",
               "message must be non-empty")
        for key in ("block", "index", "line", "derived", "base"):
            expect_num(diag, path, key, integer=True)
        expect(diag["kind"] in LINT_KINDS, f"{path}.kind",
               f"unknown diagnostic kind {diag['kind']!r} "
               f"(known: {', '.join(sorted(LINT_KINDS))})")


def check_lockgraph(doc):
    """gcsafe-lockgraph-v1 (docs/ANALYSIS.md §"Concurrency checking"): the
    runtime lock-rank lint's observed acquisition graph. Beyond shape, the
    graph must be acyclic (an edge rank A -> rank B means A was held while
    B was acquired; a cycle is a potential deadlock) and a graph from a
    healthy run must report zero violations."""
    expect_keys(doc, "$", ["schema", "policy", "ranks", "edges",
                           "violations"])
    expect(doc["policy"] in ("abort", "record"), "$.policy",
           f"expected 'abort' or 'record', got {doc['policy']!r}")

    ranks = doc["ranks"]
    expect(isinstance(ranks, list) and ranks, "$.ranks",
           "expected a non-empty array")
    names = set()
    for i, rank in enumerate(ranks):
        path = f"$.ranks[{i}]"
        expect_keys(rank, path, ["rank", "name", "acquisitions"])
        expect_num(rank, path, "rank", integer=True)
        expect_num(rank, path, "acquisitions", integer=True)
        expect_str(rank, path, "name")
        expect(rank["rank"] == i, f"{path}.rank",
               f"ranks must be dense and ordered (got {rank['rank']}, "
               f"expected {i})")
        expect(rank["name"] not in names, f"{path}.name",
               f"duplicate rank name {rank['name']!r}")
        names.add(rank["name"])

    edges = doc["edges"]
    expect(isinstance(edges, list), "$.edges", "expected an array")
    adjacency = {}
    for i, edge in enumerate(edges):
        path = f"$.edges[{i}]"
        expect_keys(edge, path, ["from", "to", "from_name", "to_name",
                                 "count"])
        for key in ("from", "to", "count"):
            expect_num(edge, path, key, integer=True)
        for key, id_key in (("from_name", "from"), ("to_name", "to")):
            expect_str(edge, path, key)
            expect(0 <= edge[id_key] < len(ranks), f"{path}.{id_key}",
                   f"rank id {edge[id_key]} out of range")
            expect(edge[key] == ranks[edge[id_key]]["name"],
                   f"{path}.{key}",
                   f"name {edge[key]!r} does not match rank "
                   f"{edge[id_key]} ({ranks[edge[id_key]]['name']!r})")
        expect(edge["count"] >= 1, f"{path}.count",
               "recorded edges must have count >= 1")
        expect(edge["from"] != edge["to"], path,
               f"self-edge on rank {edge['from']} "
               f"({edge['from_name']!r}): same-rank nesting")
        adjacency.setdefault(edge["from"], set()).add(edge["to"])

    # Acyclicity by depth-first search; a cycle means two lock orders
    # that can deadlock against each other. (The lint's strictly-
    # increasing rank discipline makes a clean graph trivially acyclic,
    # but the checker re-proves it rather than trusting the discipline.)
    state = {}  # rank -> 1 (on stack) or 2 (done)
    def visit(node, trail):
        if state.get(node) == 2:
            return
        if state.get(node) == 1:
            cycle = trail[trail.index(node):] + [node]
            names = " -> ".join(ranks[n]["name"] for n in cycle)
            raise SchemaError(f"$.edges: lock-order cycle: {names}")
        state[node] = 1
        for succ in sorted(adjacency.get(node, ())):
            visit(succ, trail + [node])
        state[node] = 2
    for node in sorted(adjacency):
        visit(node, [])

    violations = doc["violations"]
    vpath = "$.violations"
    expect_keys(violations, vpath, ["rank_inversions", "dropped_locks"],
                optional=("first_inversion",))
    for key in ("rank_inversions", "dropped_locks"):
        expect_num(violations, vpath, key, integer=True)
        expect(violations[key] == 0, f"{vpath}.{key}",
               f"a healthy run must be violation-free, got "
               f"{violations[key]}")
    expect("first_inversion" not in violations, vpath,
           "first_inversion present despite zero rank_inversions")


# --- Chrome trace_event (gcsafe-cc --trace-chrome) --------------------------

def check_chrome_trace(doc, path="$"):
    """Array form or {"traceEvents": [...]} object form; every event needs
    ph/pid/tid; non-metadata events need a monotonically nondecreasing ts."""
    if isinstance(doc, dict):
        expect("traceEvents" in doc, path,
               "object-form trace needs a 'traceEvents' array")
        events = doc["traceEvents"]
        path += ".traceEvents"
    else:
        events = doc
    expect(isinstance(events, list), path, "expected an array of events")
    last_ts = None
    for i, ev in enumerate(events):
        epath = f"{path}[{i}]"
        expect(isinstance(ev, dict), epath, "expected an event object")
        for key in ("ph", "pid", "tid"):
            expect(key in ev, epath, f"missing required key '{key}'")
        expect_str(ev, epath, "ph")
        for key in ("pid", "tid"):
            expect_num(ev, epath, key, integer=True)
        if ev["ph"] == "M":
            continue  # metadata events carry no timestamp
        expect("ts" in ev, epath, "non-metadata event missing 'ts'")
        expect_num(ev, epath, "ts")
        if ev["ph"] == "X":
            expect("dur" in ev, epath, "complete event missing 'dur'")
            expect_num(ev, epath, "dur")
            expect(ev["dur"] >= 0, f"{epath}.dur", "negative duration")
        if last_ts is not None:
            expect(ev["ts"] >= last_ts, f"{epath}.ts",
                   "events must be in nondecreasing ts order")
        last_ts = ev["ts"]


# Stable failure tokens a scrub (or a read-path validation) may attach
# to a quarantined entry, mirroring serve/Store.cpp (docs/SERVING.md
# §"Durability & restart").
STORE_SCRUB_REASONS = {
    "zero_length", "bad_magic", "bad_version", "bad_header",
    "truncated_header", "bad_key", "bad_fingerprint", "truncated_payload",
    "trailing_garbage", "bad_checksum", "io_error", "absent", "unknown",
}


def check_store_report(doc, path="$"):
    """One gcsafe-store-v1 scrub report (the store's scrub.json, written
    at every startup): each examined entry either valid or quarantined
    with a stable reason token, and the totals balancing — an entry can
    never be silently skipped."""
    expect(isinstance(doc, dict), path, "expected an object")
    expect_keys(doc, path, ["schema", "fingerprint", "scanned", "valid",
                            "quarantined", "entries"])
    expect(doc["schema"] == "gcsafe-store-v1", f"{path}.schema",
           f"expected gcsafe-store-v1, got {doc.get('schema')!r}")
    expect_str(doc, path, "fingerprint")
    expect(doc["fingerprint"] != "", f"{path}.fingerprint",
           "a scrub report must name the build fingerprint it checked "
           "entries against")
    for key in ("scanned", "valid", "quarantined"):
        expect_num(doc, path, key, integer=True)
    expect(doc["scanned"] == doc["valid"] + doc["quarantined"],
           f"{path}.scanned",
           f"scanned ({doc['scanned']}) != valid ({doc['valid']}) + "
           f"quarantined ({doc['quarantined']})")
    entries = doc["entries"]
    expect(isinstance(entries, list), f"{path}.entries",
           "expected an array")
    expect(len(entries) == doc["scanned"], f"{path}.entries",
           f"{len(entries)} entries listed for scanned={doc['scanned']}")
    valid = quarantined = 0
    for i, entry in enumerate(entries):
        epath = f"{path}.entries[{i}]"
        expect(isinstance(entry, dict), epath, "expected an object")
        expect_keys(entry, epath, ["file", "status"], optional=["reason"])
        expect_str(entry, epath, "file")
        expect(entry["file"].endswith(".entry"), f"{epath}.file",
               f"entry file {entry['file']!r} without the .entry suffix")
        expect_str(entry, epath, "status")
        if entry["status"] == "ok":
            valid += 1
            expect("reason" not in entry, f"{epath}.reason",
                   "a valid entry must not carry a failure reason")
        elif entry["status"] == "quarantined":
            quarantined += 1
            expect("reason" in entry, epath,
                   "a quarantined entry must carry a failure reason")
            expect_str(entry, epath, "reason")
            expect(entry["reason"] in STORE_SCRUB_REASONS,
                   f"{epath}.reason",
                   f"unknown reason {entry['reason']!r} (known: "
                   f"{', '.join(sorted(STORE_SCRUB_REASONS))})")
        else:
            expect(False, f"{epath}.status",
                   f"unknown status {entry['status']!r} "
                   "(known: ok, quarantined)")
    expect(valid == doc["valid"], f"{path}.valid",
           f"{valid} ok entries listed but valid={doc['valid']}")
    expect(quarantined == doc["quarantined"], f"{path}.quarantined",
           f"{quarantined} quarantined entries listed but "
           f"quarantined={doc['quarantined']}")


CHECKERS = {
    "gcsafe-bench-v1": check_bench,
    "gcsafe-trace-v1": check_trace,
    "gcsafe-run-report-v1": check_run_report,
    "gcsafe-profile-v1": check_profile,
    "gcsafe-lint-v1": check_lint,
    "gcsafe-batch-v1": check_batch,
    "gcsafe-metrics-v1": check_metrics,
    "gcsafe-flightrec-v1": check_flightrec,
    "gcsafe-lockgraph-v1": check_lockgraph,
    "gcsafe-store-v1": check_store_report,
}


def check_file(path):
    try:
        doc = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        return f"{path}: {exc}"
    if not isinstance(doc, dict) or "schema" not in doc:
        return f"{path}: not an object with a 'schema' field"
    checker = CHECKERS.get(doc["schema"])
    if checker is None:
        return (f"{path}: unknown schema '{doc['schema']}' "
                f"(known: {', '.join(sorted(CHECKERS))})")
    try:
        checker(doc)
    except SchemaError as exc:
        return f"{path}: [{doc['schema']}] {exc}"
    return None


def check_chrome_file(path):
    try:
        doc = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        return f"{path}: {exc}"
    try:
        check_chrome_trace(doc)
    except SchemaError as exc:
        return f"{path}: [chrome-trace] {exc}"
    return None


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("files", nargs="*", help="report files to validate")
    parser.add_argument("--scan", metavar="DIR",
                        help="also validate every BENCH_*.json under DIR")
    parser.add_argument("--chrome", metavar="FILE", action="append",
                        default=[],
                        help="validate FILE as Chrome trace_event JSON")
    parser.add_argument("--lint", metavar="FILE", action="append",
                        default=[],
                        help="validate FILE as a gcsafe-lint-v1 report")
    parser.add_argument("--batch", metavar="FILE", action="append",
                        default=[],
                        help="validate FILE as a gcsafe-batch-v1 summary")
    parser.add_argument("--serve", metavar="FILE", action="append",
                        default=[],
                        help="validate FILE as line-delimited "
                             "gcsafe-serve-v1 responses")
    parser.add_argument("--lockgraph", metavar="FILE", action="append",
                        default=[],
                        help="validate FILE as a gcsafe-lockgraph-v1 "
                             "lock-acquisition graph (acyclic, "
                             "violation-free)")
    parser.add_argument("--store", metavar="FILE", action="append",
                        default=[],
                        help="validate FILE as a gcsafe-store-v1 scrub "
                             "report (totals balance, quarantined entries "
                             "carry known reasons)")
    parser.add_argument("--expect-status", metavar="SUBSTR=STATUS",
                        action="append", default=[],
                        help="require the --batch input whose name contains "
                             "SUBSTR to have final status STATUS")
    args = parser.parse_args()

    files = [Path(f) for f in args.files]
    if args.scan:
        scanned = sorted(Path(args.scan).rglob("BENCH_*.json"))
        if not scanned:
            print(f"error: no BENCH_*.json found under {args.scan}",
                  file=sys.stderr)
            return 1
        files.extend(scanned)
    if (not files and not args.chrome and not args.lint and not args.batch
            and not args.serve and not args.lockgraph and not args.store):
        parser.error("no files given (pass FILEs, --scan DIR, --lint FILE, "
                     "--batch FILE, --serve FILE, --lockgraph FILE, "
                     "--store FILE, and/or --chrome FILE)")

    expectations = []
    for spec in args.expect_status:
        substr, sep, status = spec.partition("=")
        if not sep or not substr or status not in BATCH_STATUSES:
            parser.error(f"bad --expect-status '{spec}' "
                         f"(want SUBSTR=STATUS, STATUS one of "
                         f"{', '.join(sorted(BATCH_STATUSES))})")
        expectations.append((substr, status))
    if expectations and not args.batch:
        parser.error("--expect-status requires --batch")

    failures = []
    for path in args.batch:
        problem = check_file(path)
        if problem is None:
            doc = json.loads(Path(path).read_text())
            if doc["schema"] != "gcsafe-batch-v1":
                problem = (f"{path}: expected schema gcsafe-batch-v1, "
                           f"got '{doc['schema']}'")
        if problem:
            failures.append(problem)
            continue
        print(f"ok: {path} [gcsafe-batch-v1]")
        for substr, status in expectations:
            matches = [e for e in doc["inputs"] if substr in e["input"]]
            if not matches:
                failures.append(f"{path}: --expect-status: no input "
                                f"matches '{substr}'")
                continue
            for entry in matches:
                if entry["status"] != status:
                    failures.append(
                        f"{path}: input '{entry['input']}' has status "
                        f"'{entry['status']}', expected '{status}'")
    for path in args.serve:
        problem = check_serve_file(path)
        if problem:
            failures.append(problem)
        else:
            print(f"ok: {path} [gcsafe-serve-v1]")
    for path in args.lint:
        problem = check_file(path)
        if problem is None:
            doc = json.loads(Path(path).read_text())
            if doc["schema"] != "gcsafe-lint-v1":
                problem = (f"{path}: expected schema gcsafe-lint-v1, "
                           f"got '{doc['schema']}'")
        if problem:
            failures.append(problem)
        else:
            print(f"ok: {path} [gcsafe-lint-v1]")
    for path in args.lockgraph:
        problem = check_file(path)
        if problem is None:
            doc = json.loads(Path(path).read_text())
            if doc["schema"] != "gcsafe-lockgraph-v1":
                problem = (f"{path}: expected schema gcsafe-lockgraph-v1, "
                           f"got '{doc['schema']}'")
        if problem:
            failures.append(problem)
        else:
            print(f"ok: {path} [gcsafe-lockgraph-v1]")
    for path in args.store:
        problem = check_file(path)
        if problem is None:
            doc = json.loads(Path(path).read_text())
            if doc["schema"] != "gcsafe-store-v1":
                problem = (f"{path}: expected schema gcsafe-store-v1, "
                           f"got '{doc['schema']}'")
        if problem:
            failures.append(problem)
        else:
            print(f"ok: {path} [gcsafe-store-v1]")
    for path in files:
        problem = check_file(path)
        if problem:
            failures.append(problem)
        else:
            doc = json.loads(Path(path).read_text())
            print(f"ok: {path} [{doc['schema']}]")
    for path in args.chrome:
        problem = check_chrome_file(path)
        if problem:
            failures.append(problem)
        else:
            print(f"ok: {path} [chrome-trace]")
    for problem in failures:
        print(f"error: {problem}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
