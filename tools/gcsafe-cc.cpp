//===- tools/gcsafe-cc.cpp - The gcsafe command-line driver --------------===//
//
// Part of the gcsafe project, a reproduction of Boehm, "Simple
// Garbage-Collector-Safety" (PLDI 1996).
//
// The paper's preprocessor as a tool. Reads a C file (or stdin with "-"),
// and either prints annotated source or compiles and executes it on the
// simulated machine.
//
//   gcsafe-cc file.c                      # print GC-safe annotated source
//   gcsafe-cc --checked file.c            # print checked (debugging) source
//   gcsafe-cc --run --mode=safe file.c    # compile + execute
//   gcsafe-cc --dump-ir --mode=o2 file.c  # print the optimized IR
//
// Options:
//   --safe | --checked        annotation output mode (default --safe)
//   --run                     execute instead of printing source
//   --mode=o2|safe|safepost|debug|checked   compilation mode for
//                             --run/--dump-ir (default safe)
//   --machine=sparc2|sparc10|pentium90      cost model (default sparc10)
//   --gc-period=N             collect every N instructions
//   --gc-alloc-trigger=N      collect every N allocations
//   --no-opt1 .. --opt4       annotator optimization toggles
//   --slow-bases              optimization 3 heuristic
//   --stats                   print annotation and pass statistics
//   --dump-ir                 print the compiled module
//
//===----------------------------------------------------------------------===//

#include "cfront/ASTPrinter.h"
#include "driver/Pipeline.h"
#include "driver/SelfHeal.h"
#include "rewrite/EditList.h"
#include "ir/Verify.h"
#include "support/ExitCodes.h"
#include "support/FaultInject.h"
#include "support/Profile.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

using namespace gcsafe;

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: gcsafe-cc [options] <file.c | ->\n"
      "  --safe | --checked         annotated-source output mode\n"
      "  --run                      compile and execute\n"
      "  --dump-ir                  print the compiled IR module\n"
      "  --dump-ast                 print the typed AST\n"
      "  --dump-edits               print the sorted insertion/deletion list\n"
      "  --mode=o2|safe|safepost|debug|checked\n"
      "  --machine=sparc2|sparc10|pentium90\n"
      "  --gc-period=N --gc-alloc-trigger=N --gc-call-period=N\n"
      "  --no-opt1 --no-opt2 --slow-bases --at-calls-only\n"
      "  --oom-policy=graceful|fail|abort   what allocation exhaustion does\n"
      "                             (default graceful: recovery ladder,\n"
      "                             then a structured run error)\n"
      "  --oom-retries=N            recovery retries after the emergency\n"
      "                             collection (default 3)\n"
      "  --max-heap-pages=N         hard cap on GC heap pages (0=unlimited)\n"
      "  --heap-audit               run a heap-integrity audit after every\n"
      "                             collection; violations are reported\n"
      "  --fail-inject=SEED:SPEC    arm deterministic failpoints, e.g.\n"
      "                             7:heap.segment_alloc@p0.05,*@n100\n"
      "                             (sites: heap.segment_alloc,\n"
      "                             heap.page_table_grow, gc.alloc_small,\n"
      "                             gc.alloc_large)\n"
      "  --self-heal                compile transactionally down the\n"
      "                             degradation ladder (docs/ROBUSTNESS.md\n"
      "                             §5): every pass is verifier-gated and a\n"
      "                             vetoed pass is rolled back and\n"
      "                             quarantined. A recovered-but-degraded\n"
      "                             run exits 5 instead of 0\n"
      "  --opt-rung=full|peephole|unoptimized\n"
      "                             ladder entry rung (default full)\n"
      "  --pass-deadline=MS         per-optimizer-pass wall budget; a pass\n"
      "                             exceeding it is rolled back (self-heal)\n"
      "  --gc-deadline=MS           per-collection mark+sweep budget; a\n"
      "                             collection exceeding it stops the VM\n"
      "                             with exit 6 (watchdog timeout)\n"
      "  --vm-deadline=MS           whole-run wall budget; exceeded = exit 6\n"
      "  --corrupt-kind=K           restrict the opt.pass.corrupt failpoint\n"
      "                             to one operator: delete_keep_live,\n"
      "                             drop_kill, hoist_kill or clobber_base\n"
      "  --verify-safety[=each-pass]  statically verify the KEEP_LIVE\n"
      "                             invariant (docs/ANALYSIS.md) on the\n"
      "                             optimized IR; with =each-pass, after\n"
      "                             lowering and after every optimizer pass\n"
      "                             so violations name the offending pass.\n"
      "                             Violations exit with status 3\n"
      "  --lint-json[=FILE]         gcsafe-lint-v1 JSON report of the\n"
      "                             safety diagnostics (implies\n"
      "                             --verify-safety; '-' = stdout)\n"
      "  --verify-ir=each-pass      run the structural IR verifier after\n"
      "                             every optimizer pass too\n"
      "  --stats                    human-readable statistics on stderr\n"
      "  --stats-json[=FILE]        gcsafe-run-report-v1 JSON (implies\n"
      "                             --run; without =FILE the report goes to\n"
      "                             stdout and the program's output is only\n"
      "                             inside the report)\n"
      "  --trace-json=FILE          gcsafe-trace-v1 event trace (phases,\n"
      "                             passes, GC collections; '-' = stdout)\n"
      "  --trace-chrome=FILE        the same trace as Chrome trace_event\n"
      "                             JSON (open in Perfetto / about:tracing)\n"
      "  --trace-capacity=N         trace ring size in events (default\n"
      "                             4096); a dropped>0 warning on stderr\n"
      "                             means the ring was too small\n"
      "  --profile-json[=FILE]      gcsafe-profile-v1 JSON (implies --run):\n"
      "                             per-allocation-site heap counters with\n"
      "                             retention attribution, plus cycle\n"
      "                             samples when --profile-period is set\n"
      "  --profile-period=N         sample the executing function every N\n"
      "                             modeled cycles (0 = heap profile only)\n"
      "  --profile-folded=FILE      collapsed call stacks (flamegraph.pl\n"
      "                             input; implies --run)\n");
}

bool startsWith(const char *Arg, const char *Prefix, const char *&Rest) {
  size_t Len = std::strlen(Prefix);
  if (std::strncmp(Arg, Prefix, Len) != 0)
    return false;
  Rest = Arg + Len;
  return true;
}

/// Writes \p Text to \p Path, with "-" (or empty) meaning stdout.
bool writeReport(const std::string &Path, const std::string &Text) {
  if (Path.empty() || Path == "-") {
    std::fputs(Text.c_str(), stdout);
    std::fputc('\n', stdout);
    return true;
  }
  std::ofstream Out(Path);
  if (!Out) {
    std::fprintf(stderr, "gcsafe-cc: cannot write '%s'\n", Path.c_str());
    return false;
  }
  Out << Text << "\n";
  return true;
}

} // namespace

int main(int argc, char **argv) {
  annotate::AnnotationMode OutputMode = annotate::AnnotationMode::GCSafe;
  driver::CompileMode Mode = driver::CompileMode::O2Safe;
  vm::VMOptions VO;
  annotate::AnnotatorOptions Annot;
  bool Run = false, DumpIR = false, DumpAST = false, DumpEdits = false,
       Stats = false;
  bool StatsJson = false, TraceJson = false, TraceChrome = false;
  bool ProfileJson = false, ProfileFolded = false;
  driver::SafetyVerify Verify = driver::SafetyVerify::None;
  bool LintJson = false, VerifyIREachPass = false;
  std::string LintJsonPath;
  std::string StatsJsonPath, TraceJsonPath, TraceChromePath, MachineName =
                                                                "sparc10";
  std::string ProfileJsonPath, ProfileFoldedPath;
  uint64_t ProfilePeriod = 0;
  size_t TraceCapacity = 4096;
  std::string InputPath;
  support::FaultInjector Faults;
  bool UseFaults = false;
  bool SelfHeal = false;
  driver::OptRung StartRung = driver::OptRung::Full;
  uint64_t PassDeadlineNs = 0, GcDeadlineNs = 0, VmDeadlineNs = 0;
  int CorruptKind = -1;

  for (int I = 1; I < argc; ++I) {
    const char *Arg = argv[I];
    const char *Rest = nullptr;
    if (!std::strcmp(Arg, "--safe")) {
      OutputMode = annotate::AnnotationMode::GCSafe;
    } else if (!std::strcmp(Arg, "--checked")) {
      OutputMode = annotate::AnnotationMode::Checked;
    } else if (!std::strcmp(Arg, "--run")) {
      Run = true;
    } else if (!std::strcmp(Arg, "--dump-ir")) {
      DumpIR = true;
    } else if (!std::strcmp(Arg, "--dump-ast")) {
      DumpAST = true;
    } else if (!std::strcmp(Arg, "--dump-edits")) {
      DumpEdits = true;
    } else if (!std::strcmp(Arg, "--stats")) {
      Stats = true;
    } else if (!std::strcmp(Arg, "--stats-json")) {
      StatsJson = true;
    } else if (startsWith(Arg, "--stats-json=", Rest)) {
      StatsJson = true;
      StatsJsonPath = Rest;
    } else if (!std::strcmp(Arg, "--trace-json")) {
      TraceJson = true;
    } else if (startsWith(Arg, "--trace-json=", Rest)) {
      TraceJson = true;
      TraceJsonPath = Rest;
    } else if (startsWith(Arg, "--trace-chrome=", Rest)) {
      TraceChrome = true;
      TraceChromePath = Rest;
    } else if (startsWith(Arg, "--trace-capacity=", Rest)) {
      TraceCapacity = std::strtoull(Rest, nullptr, 10);
      if (!TraceCapacity) {
        std::fprintf(stderr, "--trace-capacity must be positive\n");
        return support::ExitUsage;
      }
    } else if (!std::strcmp(Arg, "--profile-json")) {
      ProfileJson = true;
    } else if (startsWith(Arg, "--profile-json=", Rest)) {
      ProfileJson = true;
      ProfileJsonPath = Rest;
    } else if (startsWith(Arg, "--profile-period=", Rest)) {
      ProfilePeriod = std::strtoull(Rest, nullptr, 10);
    } else if (startsWith(Arg, "--profile-folded=", Rest)) {
      ProfileFolded = true;
      ProfileFoldedPath = Rest;
    } else if (!std::strcmp(Arg, "--verify-safety")) {
      Verify = driver::SafetyVerify::Final;
    } else if (startsWith(Arg, "--verify-safety=", Rest)) {
      if (!std::strcmp(Rest, "each-pass"))
        Verify = driver::SafetyVerify::EachPass;
      else if (!std::strcmp(Rest, "final"))
        Verify = driver::SafetyVerify::Final;
      else {
        std::fprintf(stderr, "unknown --verify-safety mode '%s'\n", Rest);
        return support::ExitUsage;
      }
    } else if (!std::strcmp(Arg, "--lint-json")) {
      LintJson = true;
    } else if (startsWith(Arg, "--lint-json=", Rest)) {
      LintJson = true;
      LintJsonPath = Rest;
    } else if (startsWith(Arg, "--verify-ir=", Rest)) {
      if (!std::strcmp(Rest, "each-pass"))
        VerifyIREachPass = true;
      else {
        std::fprintf(stderr, "unknown --verify-ir mode '%s'\n", Rest);
        return support::ExitUsage;
      }
    } else if (!std::strcmp(Arg, "--no-opt1")) {
      Annot.SkipCopies = false;
    } else if (!std::strcmp(Arg, "--no-opt2")) {
      Annot.SpecializeIncDec = false;
    } else if (!std::strcmp(Arg, "--slow-bases")) {
      Annot.PreferSlowBases = true;
    } else if (!std::strcmp(Arg, "--at-calls-only")) {
      Annot.Trigger = annotate::GcTrigger::AtCallsOnly;
    } else if (startsWith(Arg, "--mode=", Rest)) {
      std::string M = Rest;
      if (M == "o2")
        Mode = driver::CompileMode::O2;
      else if (M == "safe")
        Mode = driver::CompileMode::O2Safe;
      else if (M == "safepost")
        Mode = driver::CompileMode::O2SafePost;
      else if (M == "debug")
        Mode = driver::CompileMode::Debug;
      else if (M == "checked")
        Mode = driver::CompileMode::DebugChecked;
      else {
        std::fprintf(stderr, "unknown mode '%s'\n", Rest);
        return support::ExitUsage;
      }
    } else if (startsWith(Arg, "--machine=", Rest)) {
      std::string M = Rest;
      MachineName = M;
      if (M == "sparc2")
        VO.Model = vm::sparc2();
      else if (M == "sparc10")
        VO.Model = vm::sparc10();
      else if (M == "pentium90")
        VO.Model = vm::pentium90();
      else {
        std::fprintf(stderr, "unknown machine '%s'\n", Rest);
        return support::ExitUsage;
      }
    } else if (startsWith(Arg, "--gc-period=", Rest)) {
      VO.GcInstructionPeriod = std::strtoull(Rest, nullptr, 10);
    } else if (startsWith(Arg, "--gc-alloc-trigger=", Rest)) {
      VO.GcAllocTrigger = std::strtoull(Rest, nullptr, 10);
    } else if (startsWith(Arg, "--gc-call-period=", Rest)) {
      VO.GcCallPeriod = std::strtoull(Rest, nullptr, 10);
    } else if (startsWith(Arg, "--oom-policy=", Rest)) {
      std::string P = Rest;
      if (P == "graceful")
        VO.GcOomPolicy = gc::OomPolicy::Graceful;
      else if (P == "fail")
        VO.GcOomPolicy = gc::OomPolicy::Fail;
      else if (P == "abort")
        VO.GcOomPolicy = gc::OomPolicy::Abort;
      else {
        std::fprintf(stderr, "unknown OOM policy '%s'\n", Rest);
        return support::ExitUsage;
      }
    } else if (startsWith(Arg, "--oom-retries=", Rest)) {
      VO.GcOomRetries =
          static_cast<unsigned>(std::strtoul(Rest, nullptr, 10));
    } else if (startsWith(Arg, "--max-heap-pages=", Rest)) {
      VO.GcMaxHeapPages = std::strtoull(Rest, nullptr, 10);
    } else if (!std::strcmp(Arg, "--heap-audit")) {
      VO.GcAuditEachCollection = true;
    } else if (!std::strcmp(Arg, "--self-heal")) {
      SelfHeal = true;
    } else if (startsWith(Arg, "--opt-rung=", Rest)) {
      SelfHeal = true;
      if (!driver::parseOptRung(Rest, StartRung)) {
        std::fprintf(stderr, "unknown --opt-rung '%s'\n", Rest);
        return support::ExitUsage;
      }
    } else if (startsWith(Arg, "--pass-deadline=", Rest)) {
      SelfHeal = true;
      PassDeadlineNs = std::strtoull(Rest, nullptr, 10) * 1000000ull;
    } else if (startsWith(Arg, "--gc-deadline=", Rest)) {
      GcDeadlineNs = std::strtoull(Rest, nullptr, 10) * 1000000ull;
    } else if (startsWith(Arg, "--vm-deadline=", Rest)) {
      VmDeadlineNs = std::strtoull(Rest, nullptr, 10) * 1000000ull;
    } else if (startsWith(Arg, "--corrupt-kind=", Rest)) {
      std::string K = Rest;
      if (K == "delete_keep_live")
        CorruptKind = 0;
      else if (K == "drop_kill")
        CorruptKind = 1;
      else if (K == "hoist_kill")
        CorruptKind = 2;
      else if (K == "clobber_base")
        CorruptKind = 3;
      else {
        std::fprintf(stderr, "unknown --corrupt-kind '%s'\n", Rest);
        return support::ExitUsage;
      }
    } else if (startsWith(Arg, "--fail-inject=", Rest)) {
      std::string Error;
      if (!support::FaultInjector::parse(Rest, Faults, Error)) {
        std::fprintf(stderr, "bad --fail-inject spec: %s\n", Error.c_str());
        return support::ExitUsage;
      }
      UseFaults = true;
    } else if (!std::strcmp(Arg, "--help") || !std::strcmp(Arg, "-h")) {
      usage();
      return support::ExitSuccess;
    } else if (Arg[0] == '-' && Arg[1] != '\0') {
      std::fprintf(stderr, "unknown option '%s'\n", Arg);
      usage();
      return support::ExitUsage;
    } else {
      InputPath = Arg;
    }
  }

  if (InputPath.empty()) {
    usage();
    return support::ExitUsage;
  }

  // --stats-json and the profile outputs report a full run (compile +
  // execute); --trace-json/--trace-chrome alone still need the middle end
  // to produce phase/pass events.
  if (StatsJson || ProfileJson || ProfileFolded)
    Run = true;
  // A lint report is the verifier's output; asking for one turns it on.
  if (LintJson && Verify == driver::SafetyVerify::None)
    Verify = driver::SafetyVerify::Final;
  support::TraceBuffer Trace(TraceCapacity);
  support::TraceBuffer *TraceSink =
      (TraceJson || TraceChrome) ? &Trace : nullptr;
  VO.Trace = TraceSink;
  VO.VmDeadlineNs = VmDeadlineNs;
  VO.GcDeadlineNs = GcDeadlineNs;
  if (UseFaults)
    VO.Faults = &Faults;
  support::Profiler Prof;
  Prof.SamplePeriodCycles = ProfilePeriod;
  if (ProfileJson || ProfileFolded || ProfilePeriod)
    VO.Profile = &Prof;
  // The ring silently overwrites its oldest events; surface that whenever a
  // trace is actually written out.
  auto WarnIfTraceDropped = [&Trace] {
    if (Trace.dropped())
      std::fprintf(stderr,
                   "gcsafe-cc: warning: trace ring dropped %llu event(s) "
                   "(capacity %zu); raise --trace-capacity\n",
                   static_cast<unsigned long long>(Trace.dropped()),
                   Trace.capacity());
  };

  std::string Source;
  if (InputPath == "-") {
    std::stringstream SS;
    SS << std::cin.rdbuf();
    Source = SS.str();
  } else {
    std::ifstream In(InputPath);
    if (!In) {
      std::fprintf(stderr, "gcsafe-cc: cannot open '%s'\n",
                   InputPath.c_str());
      return support::ExitError;
    }
    std::stringstream SS;
    SS << In.rdbuf();
    Source = SS.str();
  }

  driver::Compilation Comp(InputPath == "-" ? "<stdin>" : InputPath,
                           std::move(Source));
  if (!Comp.parse()) {
    std::fputs(Comp.renderedDiagnostics().c_str(), stderr);
    return support::ExitError;
  }
  // Surface warnings (e.g. the nonpointer-to-pointer warning) even on
  // success.
  if (Comp.diags().warningCount())
    std::fputs(Comp.renderedDiagnostics().c_str(), stderr);

  if (DumpAST) {
    std::fputs(cfront::printTranslationUnit(Comp.tu()).c_str(), stdout);
    if (!Run && !DumpIR)
      return support::ExitSuccess;
  }

  if (DumpEdits) {
    // The paper's "list of insertions and deletions, sorted by character
    // position in the original source string".
    auto Map = Comp.annotate(Annot);
    rewrite::EditList Edits;
    annotate::renderAnnotationEdits(Comp.buffer(), Map, OutputMode, Edits);
    Edits.forEachSorted([&](uint32_t Pos, uint32_t DeleteLen,
                            const std::string &Text) {
      LineColumn LC = Comp.buffer().lineColumn(SourceLocation(Pos));
      std::printf("%u:%u", LC.Line, LC.Column);
      if (DeleteLen)
        std::printf(" delete %u", DeleteLen);
      if (!Text.empty())
        std::printf(" insert \"%s\"", Text.c_str());
      std::printf("\n");
    });
    if (!Run && !DumpIR)
      return support::ExitSuccess;
  }

  if (!Run && !DumpIR && !TraceJson && !TraceChrome &&
      Verify == driver::SafetyVerify::None && !VerifyIREachPass) {
    std::string Out = Comp.annotatedSource(OutputMode, Annot);
    std::fputs(Out.c_str(), stdout);
    if (Stats) {
      auto Map = Comp.annotate(Annot);
      const auto &S = Map.stats();
      std::fprintf(stderr,
                   "annotations: %u keep_lives, %u incdec, %u compound, "
                   "%u temps; skipped: %u copies, %u call results, "
                   "%u non-heap\n",
                   S.KeepLives, S.IncDecExpansions,
                   S.CompoundAssignExpansions, S.TempsIntroduced,
                   S.SkippedCopies, S.SkippedCallResults, S.SkippedNonHeap);
    }
    return support::ExitSuccess;
  }

  driver::CompileOptions CO;
  CO.Mode = Mode;
  CO.Annot = Annot;
  CO.Trace = TraceSink;
  CO.Verify = Verify;
  CO.VerifyIREachPass = VerifyIREachPass;
  driver::CompileResult CR;
  driver::SelfHealReport Heal;
  if (SelfHeal) {
    driver::SelfHealOptions SH;
    SH.StartRung = StartRung;
    SH.PassDeadlineNs = PassDeadlineNs;
    SH.Faults = UseFaults ? &Faults : nullptr;
    SH.CorruptKind = CorruptKind;
    CR = driver::compileSelfHealing(Comp, CO, SH, Heal);
    for (const std::string &Line : Heal.Log)
      std::fprintf(stderr, "gcsafe-cc: self-heal: %s\n", Line.c_str());
    if (Heal.Degraded)
      std::fprintf(stderr,
                   "gcsafe-cc: self-heal: committed at rung '%s' after %u "
                   "attempt(s), %zu rollback(s), %zu quarantined pass(es)\n",
                   driver::optRungName(Heal.Rung), Heal.Attempts,
                   Heal.Rollbacks.size(), Heal.Quarantined.size());
    if (CR.Ok && !Heal.Ok) {
      // Every rung failed final verification — unsafe code with nowhere
      // left to descend.
      for (const analysis::SafetyDiag &D : CR.SafetyDiags)
        std::fprintf(stderr, "safety: %s\n",
                     analysis::formatSafetyDiag(D).c_str());
      return support::ExitSafetyViolation;
    }
  } else {
    CR = Comp.compile(CO);
  }
  if (!CR.Ok) {
    std::fputs(CR.Errors.c_str(), stderr);
    return support::ExitError;
  }
  std::vector<std::string> VerifyErrors;
  if (!ir::verifyModule(CR.Module, VerifyErrors)) {
    for (const std::string &E : VerifyErrors)
      std::fprintf(stderr, "IR verifier: %s\n", E.c_str());
    return support::ExitError;
  }
  if (!CR.IRVerifyErrors.empty()) {
    for (const std::string &E : CR.IRVerifyErrors)
      std::fprintf(stderr, "IR verifier: %s\n", E.c_str());
    return support::ExitError;
  }
  if (Verify != driver::SafetyVerify::None) {
    for (const analysis::SafetyDiag &D : CR.SafetyDiags)
      std::fprintf(stderr, "safety: %s\n",
                   analysis::formatSafetyDiag(D).c_str());
    if (LintJson) {
      support::Json Report = driver::buildLintReport(
          InputPath == "-" ? "<stdin>" : InputPath, Mode,
          Verify == driver::SafetyVerify::EachPass, CR, &Comp.buffer());
      if (!writeReport(LintJsonPath, Report.dump()))
        return support::ExitError;
    }
    // Exit code 3 is the stable "safety verification failed" status —
    // distinct from 1 (compile/runtime error) and 2 (usage).
    if (!CR.SafetyOk)
      return support::ExitSafetyViolation;
  }

  if (DumpIR)
    std::fputs(ir::printModule(CR.Module).c_str(), stdout);

  if (Stats)
    std::fprintf(stderr,
                 "code size: %u units; opt: folded=%u cse=%u reassoc=%u "
                 "sr=%u hoisted=%u fused=%u kills=%u\n",
                 CR.CodeSizeUnits, CR.OptStats.Folded, CR.OptStats.CSEd,
                 CR.OptStats.Reassociated, CR.OptStats.StrengthReduced,
                 CR.OptStats.Hoisted, CR.OptStats.Fused,
                 CR.OptStats.KillsInserted);

  if (!Run) {
    if (StatsJson) {
      driver::CompileResult &CC = CR;
      support::Json Report = driver::buildRunReport(
          InputPath == "-" ? "<stdin>" : InputPath, Mode, MachineName, CC,
          nullptr);
      if (!writeReport(StatsJsonPath, Report.dump()))
        return support::ExitError;
    }
    if (TraceJson || TraceChrome)
      WarnIfTraceDropped();
    if (TraceJson && !writeReport(TraceJsonPath, Trace.toJson().dump()))
      return support::ExitError;
    if (TraceChrome &&
        !writeReport(TraceChromePath,
                     support::traceToChromeJson(Trace).dump()))
      return support::ExitError;
    return SelfHeal && Heal.Degraded ? support::ExitDegradedSuccess
                                     : support::ExitSuccess;
  }

  vm::VM Machine(CR.Module, VO);
  vm::RunResult R = Machine.run();
  // With the report on stdout, the program's output lives inside it; echo
  // only when the report goes elsewhere.
  bool ReportOnStdout =
      (StatsJson && (StatsJsonPath.empty() || StatsJsonPath == "-")) ||
      (TraceJson && (TraceJsonPath.empty() || TraceJsonPath == "-")) ||
      (ProfileJson && (ProfileJsonPath.empty() || ProfileJsonPath == "-"));
  if (!ReportOnStdout)
    std::fputs(R.Output.c_str(), stdout);
  if (StatsJson) {
    support::Json Report = driver::buildRunReport(
        InputPath == "-" ? "<stdin>" : InputPath, Mode, MachineName, CR, &R);
    if (!writeReport(StatsJsonPath, Report.dump()))
      return support::ExitError;
  }
  if (ProfileJson) {
    support::Json Report =
        Prof.toJson(InputPath == "-" ? "<stdin>" : InputPath,
                    driver::compileModeName(Mode), MachineName);
    if (!writeReport(ProfileJsonPath, Report.dump()))
      return support::ExitError;
  }
  if (ProfileFolded &&
      !writeReport(ProfileFoldedPath, Prof.Cycles.foldedOutput()))
    return support::ExitError;
  if (TraceJson || TraceChrome)
    WarnIfTraceDropped();
  if (TraceJson && !writeReport(TraceJsonPath, Trace.toJson().dump()))
    return support::ExitError;
  if (TraceChrome &&
      !writeReport(TraceChromePath, support::traceToChromeJson(Trace).dump()))
    return support::ExitError;
  if (R.Gc.AuditViolations)
    std::fprintf(stderr,
                 "gcsafe-cc: heap audit found %llu violation(s) over %llu "
                 "audit(s)\n",
                 static_cast<unsigned long long>(R.Gc.AuditViolations),
                 static_cast<unsigned long long>(R.Gc.AuditsRun));
  if (UseFaults && Stats)
    std::fprintf(stderr,
                 "fault injection: %llu hits, %llu fires; recovery: %llu "
                 "emergency collections, %llu retries, %llu alloc failures\n",
                 static_cast<unsigned long long>(Faults.totalHits()),
                 static_cast<unsigned long long>(Faults.totalFires()),
                 static_cast<unsigned long long>(R.Gc.EmergencyCollections),
                 static_cast<unsigned long long>(R.Gc.OomRetriesPerformed),
                 static_cast<unsigned long long>(R.Gc.AllocFailures));
  if (R.WatchdogTimeout) {
    std::fprintf(stderr, "gcsafe-cc: %s\n", R.Error.c_str());
    return support::ExitWatchdogTimeout;
  }
  if (!R.Ok) {
    std::fprintf(stderr, "gcsafe-cc: runtime error: %s\n", R.Error.c_str());
    return support::ExitError;
  }
  if (R.Gc.AuditViolations)
    return support::ExitError;
  if (Stats || R.CheckViolations || R.FreedAccesses)
    std::fprintf(stderr,
                 "[%s on %s] cycles=%llu instructions=%llu collections=%llu "
                 "checks=%llu violations=%llu freed-accesses=%llu exit=%ld\n",
                 driver::compileModeName(Mode), VO.Model.Name.c_str(),
                 static_cast<unsigned long long>(R.Cycles),
                 static_cast<unsigned long long>(R.InstructionsExecuted),
                 static_cast<unsigned long long>(R.Collections),
                 static_cast<unsigned long long>(R.ChecksPerformed),
                 static_cast<unsigned long long>(R.CheckViolations),
                 static_cast<unsigned long long>(R.FreedAccesses),
                 R.ExitCode);
  // A degraded-but-correct run reports ExitDegradedSuccess in place of 0;
  // a nonzero program exit always wins (the program's status is the
  // contract the caller cares about first).
  if (R.ExitCode == 0 && SelfHeal && Heal.Degraded)
    return support::ExitDegradedSuccess;
  return static_cast<int>(R.ExitCode & 0xFF);
}
