#!/usr/bin/env python3
"""Exercise gcsafe-serve end to end as a client would.

Drives one session — ping, a cold compile, the same compile warm, stats,
metrics, shutdown — through either transport:

  serve_client_test.py --once    --serve-bin BIN --source FILE --out FILE
  serve_client_test.py --socket  --serve-bin BIN --source FILE --out FILE
  serve_client_test.py --hygiene --serve-bin BIN --source FILE --out FILE

and asserts the serving contract (docs/SERVING.md): the warm response is
served from the cache, byte-identical to the cold response apart from the
"cached", "id", and "request_id" fields, each compile echoes its client
request_id, and the stats op reports the hit. In socket mode
the cold and warm compiles arrive on *different connections*, proving the
cache is shared across clients, and the daemon must exit 0 after the
shutdown op. Every response line is written to --out so the ctest wiring
can validate the session against the gcsafe-serve-v1 schema with
check_bench_json.py --serve.

--hygiene exercises the protocol-robustness surface against a daemon
with a small --max-request and short socket timeouts
(docs/SERVING.md §"Operating under load"): a health round trip, an
oversized request line (typed protocol error, then hangup), a truncated
NDJSON line (typed error, connection still usable), a mid-line
disconnect (no response owed, daemon unharmed), and finally a drain that
must ack, finish queued work, and exit the daemon with code 0.

Exits nonzero with a message on the first violated expectation.
"""

import argparse
import json
import os
import socket
import subprocess
import sys
import tempfile
import time
from pathlib import Path


def fail(message):
    print(f"serve_client_test: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def wait_and_connect(path, daemon, timeout=30.0, conn_timeout=30):
    """Connect to the daemon's unix socket, retrying a not-yet-created
    socket file and ECONNREFUSED with bounded exponential backoff.

    The daemon creates the socket file and *then* starts accepting, so a
    client can race either step; a fixed sleep flakes on slow machines
    and wastes time on fast ones. Backoff starts at 10ms and doubles to a
    0.5s cap, bounded by ``timeout`` overall; a daemon that exits while
    we wait fails immediately instead of burning the whole budget.
    """
    deadline = time.monotonic() + timeout
    delay = 0.01
    while True:
        conn = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        conn.settimeout(conn_timeout)
        try:
            conn.connect(path)
            return conn
        except (FileNotFoundError, ConnectionRefusedError) as exc:
            conn.close()
            if daemon is not None and daemon.poll() is not None:
                fail(f"daemon exited early with {daemon.returncode}")
            if time.monotonic() > deadline:
                fail(f"could not connect to {path} within {timeout:.0f}s "
                     f"({exc})")
            time.sleep(delay)
            delay = min(delay * 2, 0.5)


def build_requests(source):
    compile_req = {
        "schema": "gcsafe-serve-v1",
        "op": "compile",
        "name": "client-test",
        "source": source,
        "mode": "safepost",
        "run": True,
    }
    return [
        {"schema": "gcsafe-serve-v1", "op": "ping", "id": "ping-1"},
        dict(compile_req, id="cold-1", request_id="rid-cold"),
        dict(compile_req, id="warm-1", request_id="rid-warm"),
        {"schema": "gcsafe-serve-v1", "op": "stats", "id": "stats-1"},
        {"schema": "gcsafe-serve-v1", "op": "metrics", "id": "metrics-1"},
        {"schema": "gcsafe-serve-v1", "op": "shutdown", "id": "bye-1"},
    ]


def check_session(responses):
    """The shared contract, regardless of transport."""
    by_id = {r.get("id"): r for r in responses}
    for rid in ("ping-1", "cold-1", "warm-1", "stats-1", "metrics-1",
                "bye-1"):
        if rid not in by_id:
            fail(f"no response with id '{rid}'")
    ping, cold, warm = by_id["ping-1"], by_id["cold-1"], by_id["warm-1"]
    stats, metrics, bye = by_id["stats-1"], by_id["metrics-1"], by_id["bye-1"]

    if not ping["ok"] or ping["op"] != "ping":
        fail(f"bad ping response: {ping}")
    if not bye["ok"] or bye["op"] != "shutdown":
        fail(f"bad shutdown ack: {bye}")

    for name, resp in (("cold", cold), ("warm", warm)):
        if resp["op"] != "compile" or not resp["ok"]:
            fail(f"{name} compile did not succeed: {resp}")
        if resp["exit_code"] != 0:
            fail(f"{name} compile exit_code {resp['exit_code']}, expected 0")
    if cold["cached"]:
        fail("cold compile claims cached=true")
    if not warm["cached"]:
        fail("warm compile was not served from the cache")
    if warm["cache_key"] != cold["cache_key"]:
        fail(f"cache keys differ: {cold['cache_key']} vs "
             f"{warm['cache_key']}")

    # Trace propagation (docs/OBSERVABILITY.md §8): each response echoes
    # its own client request_id, cached or not.
    if cold.get("request_id") != "rid-cold":
        fail(f"cold response request_id {cold.get('request_id')!r}, "
             "expected 'rid-cold'")
    if warm.get("request_id") != "rid-warm":
        fail(f"warm response request_id {warm.get('request_id')!r}, "
             "expected 'rid-warm'")

    # Byte-identity: strip the fields that legitimately differ and compare
    # the canonicalized rest.
    def canon(resp):
        return json.dumps(
            {k: v for k, v in resp.items()
             if k not in ("cached", "id", "request_id")},
            sort_keys=True)
    if canon(warm) != canon(cold):
        fail("warm response is not byte-identical to cold "
             "(modulo 'cached', 'id', and 'request_id')")

    serve = stats.get("serve")
    if not isinstance(serve, dict):
        fail(f"stats response without a serve tree: {stats}")
    if serve["cache"]["hits"] < 1:
        fail(f"stats reports no cache hit: {serve['cache']}")
    if serve["requests"] < 2:
        fail(f"stats reports {serve['requests']} requests, expected >= 2")

    # The metrics op answers with the latency snapshot: both compiles
    # accounted for end to end, and only the cold one compiled.
    snap = metrics.get("metrics")
    if not isinstance(snap, dict) or snap.get("schema") != "gcsafe-metrics-v1":
        fail(f"bad metrics response: {metrics}")
    stages = snap["stages"]
    if stages["e2e"]["count"] != serve["requests"]:
        fail(f"e2e histogram count {stages['e2e']['count']} != "
             f"serve.requests {serve['requests']}")
    if stages["compile"]["count"] < 1:
        fail("metrics reports no compile-stage samples")
    return 0


def run_once(args, requests):
    text = "".join(json.dumps(r) + "\n" for r in requests)
    proc = subprocess.run([args.serve_bin, "--once"], input=text,
                          capture_output=True, text=True, timeout=120)
    if proc.returncode != 0:
        fail(f"gcsafe-serve --once exited {proc.returncode}: {proc.stderr}")
    lines = [l for l in proc.stdout.splitlines() if l.strip()]
    if len(lines) != len(requests):
        fail(f"{len(lines)} response lines for {len(requests)} requests")
    return lines


def read_line(conn):
    buf = b""
    while not buf.endswith(b"\n"):
        chunk = conn.recv(65536)
        if not chunk:
            fail("connection closed mid-response")
        buf += chunk
    return buf.decode()


def ask(conn, request):
    conn.sendall((json.dumps(request) + "\n").encode())
    return read_line(conn).rstrip("\n")


def run_socket(args, requests):
    ping, cold, warm, stats, metrics, bye = requests
    # Unix socket paths are length-limited; stay short under /tmp.
    with tempfile.TemporaryDirectory(prefix="gcsafe-",
                                     dir="/tmp") as tmp:
        path = os.path.join(tmp, "serve.sock")
        daemon = subprocess.Popen(
            [args.serve_bin, f"--socket={path}", "--workers=2"],
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        try:
            lines = []
            # Connection 1: ping + cold compile.
            with wait_and_connect(path, daemon) as c1:
                lines.append(ask(c1, ping))
                lines.append(ask(c1, cold))
            # Connection 2: the warm hit must come from the shared cache.
            with wait_and_connect(path, daemon) as c2:
                lines.append(ask(c2, warm))
                lines.append(ask(c2, stats))
                lines.append(ask(c2, metrics))
                lines.append(ask(c2, bye))

            code = daemon.wait(timeout=30)
            if code != 0:
                fail(f"daemon exited {code} after shutdown, expected 0")
            if os.path.exists(path):
                fail("daemon left its socket behind")
            return lines
        finally:
            if daemon.poll() is None:
                daemon.kill()
                daemon.wait()


def run_hygiene(args, requests):
    """Protocol robustness against a live daemon: hostile inputs get
    typed errors (or a clean hangup), the daemon survives all of them,
    and drain retires it with exit code 0."""
    del requests  # hygiene builds its own traffic
    source = Path(args.source).read_text()
    lines = []
    with tempfile.TemporaryDirectory(prefix="gcsafe-", dir="/tmp") as tmp:
        path = os.path.join(tmp, "serve.sock")
        daemon = subprocess.Popen(
            [args.serve_bin, f"--socket={path}", "--workers=2",
             "--max-request=8192", "--read-timeout=3000",
             "--write-timeout=3000"],
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        try:
            def fresh():
                return wait_and_connect(path, daemon)

            # Health round trip: the daemon reports itself ready.
            with fresh() as c:
                line = ask(c, {"schema": "gcsafe-serve-v1",
                               "op": "health", "id": "health-1"})
                lines.append(line)
                health = json.loads(line)
                if not (health["ok"] and health["ready"]
                        and health["op"] == "health"):
                    fail(f"daemon not healthy at start: {health}")

            # Oversized request line: a typed protocol error, then the
            # daemon hangs up on the connection.
            with fresh() as c:
                c.sendall(b'{"op":"compile","source":"' + b"x" * 9000 +
                          b'"}\n')
                buf = b""
                while not buf.endswith(b"\n"):
                    chunk = c.recv(65536)
                    if not chunk:
                        fail("oversized request got no error response")
                    buf += chunk
                line = buf.decode().rstrip("\n")
                lines.append(line)
                resp = json.loads(line)
                if resp["ok"] or resp["op"] != "error" \
                        or "exceeds" not in resp["error"]:
                    fail(f"oversized request not typed-rejected: {resp}")
                if c.recv(65536) != b"":
                    fail("daemon kept the oversized connection open")

            # Truncated NDJSON: a typed error, and the *same* connection
            # still serves a well-formed request afterwards.
            with fresh() as c:
                c.sendall(b'{"op":"compile","source": truncated\n')
                resp = json.loads(read_line(c))
                lines.append(json.dumps(resp))
                if resp["ok"] or resp["op"] != "error":
                    fail(f"truncated line not typed-rejected: {resp}")
                line = ask(c, {"schema": "gcsafe-serve-v1", "op": "ping",
                               "id": "after-garbage"})
                lines.append(line)
                if not json.loads(line)["ok"]:
                    fail("connection unusable after a truncated line")

            # Mid-line disconnect: half a document, then gone. No
            # response is owed; the daemon must simply shrug it off.
            with fresh() as c:
                c.sendall(b'{"op":"compile","source":"int ma')
            time.sleep(0.2)
            if daemon.poll() is not None:
                fail(f"daemon died on a mid-line disconnect "
                     f"(exit {daemon.returncode})")

            # Real work still flows after the abuse.
            with fresh() as c:
                line = ask(c, {"schema": "gcsafe-serve-v1", "op": "compile",
                               "id": "post-abuse", "name": "post-abuse",
                               "source": source, "mode": "safepost",
                               "run": True})
                lines.append(line)
                resp = json.loads(line)
                if not resp["ok"] or resp["exit_code"] != 0:
                    fail(f"compile failed after hostile traffic: {resp}")

            # Drain: ack, finish the (empty) queue, exit 0, no socket.
            with fresh() as c:
                line = ask(c, {"schema": "gcsafe-serve-v1", "op": "drain",
                               "id": "drain-1"})
                lines.append(line)
                if not json.loads(line)["ok"]:
                    fail(f"drain not acked: {line}")
            code = daemon.wait(timeout=30)
            if code != 0:
                fail(f"daemon exited {code} after drain, expected 0")
            if os.path.exists(path):
                fail("daemon left its socket behind after drain")
            return lines
        finally:
            if daemon.poll() is None:
                daemon.kill()
                daemon.wait()


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    transport = parser.add_mutually_exclusive_group(required=True)
    transport.add_argument("--once", action="store_true",
                           help="drive gcsafe-serve --once over stdin")
    transport.add_argument("--socket", action="store_true",
                           help="drive a gcsafe-serve unix-socket daemon")
    transport.add_argument("--hygiene", action="store_true",
                           help="hostile-input and drain/health checks "
                                "against a daemon with small limits")
    parser.add_argument("--serve-bin", required=True,
                        help="path to the gcsafe-serve binary")
    parser.add_argument("--source", required=True,
                        help="C source file to compile through the service")
    parser.add_argument("--out", required=True,
                        help="write the raw response lines here (for "
                             "check_bench_json.py --serve)")
    args = parser.parse_args()

    if args.hygiene:
        lines = run_hygiene(args, None)
        Path(args.out).write_text("".join(l + "\n" for l in lines))
        print(f"serve_client_test: ok (--hygiene, {len(lines)} responses, "
              "hostile inputs contained, drain exit verified)")
        return 0

    source = Path(args.source).read_text()
    requests = build_requests(source)
    lines = run_once(args, requests) if args.once else run_socket(args,
                                                                  requests)
    Path(args.out).write_text("".join(l + "\n" for l in lines))

    responses = []
    for n, line in enumerate(lines, 1):
        try:
            responses.append(json.loads(line))
        except json.JSONDecodeError as exc:
            fail(f"response line {n} is not JSON: {exc}")
    check_session(responses)
    transport_name = "--once" if args.once else "--socket"
    print(f"serve_client_test: ok ({transport_name}, "
          f"{len(responses)} responses, warm hit verified)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
