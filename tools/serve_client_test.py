#!/usr/bin/env python3
"""Exercise gcsafe-serve end to end as a client would.

Drives one session — ping, a cold compile, the same compile warm, stats,
shutdown — through either transport:

  serve_client_test.py --once   --serve-bin BIN --source FILE --out FILE
  serve_client_test.py --socket --serve-bin BIN --source FILE --out FILE

and asserts the serving contract (docs/SERVING.md): the warm response is
served from the cache, byte-identical to the cold response apart from the
"cached" and "id" fields, and the stats op reports the hit. In socket mode
the cold and warm compiles arrive on *different connections*, proving the
cache is shared across clients, and the daemon must exit 0 after the
shutdown op. Every response line is written to --out so the ctest wiring
can validate the session against the gcsafe-serve-v1 schema with
check_bench_json.py --serve.

Exits nonzero with a message on the first violated expectation.
"""

import argparse
import json
import os
import socket
import subprocess
import sys
import tempfile
import time
from pathlib import Path


def fail(message):
    print(f"serve_client_test: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def build_requests(source):
    compile_req = {
        "schema": "gcsafe-serve-v1",
        "op": "compile",
        "name": "client-test",
        "source": source,
        "mode": "safepost",
        "run": True,
    }
    return [
        {"schema": "gcsafe-serve-v1", "op": "ping", "id": "ping-1"},
        dict(compile_req, id="cold-1"),
        dict(compile_req, id="warm-1"),
        {"schema": "gcsafe-serve-v1", "op": "stats", "id": "stats-1"},
        {"schema": "gcsafe-serve-v1", "op": "shutdown", "id": "bye-1"},
    ]


def check_session(responses):
    """The shared contract, regardless of transport."""
    by_id = {r.get("id"): r for r in responses}
    for rid in ("ping-1", "cold-1", "warm-1", "stats-1", "bye-1"):
        if rid not in by_id:
            fail(f"no response with id '{rid}'")
    ping, cold, warm = by_id["ping-1"], by_id["cold-1"], by_id["warm-1"]
    stats, bye = by_id["stats-1"], by_id["bye-1"]

    if not ping["ok"] or ping["op"] != "ping":
        fail(f"bad ping response: {ping}")
    if not bye["ok"] or bye["op"] != "shutdown":
        fail(f"bad shutdown ack: {bye}")

    for name, resp in (("cold", cold), ("warm", warm)):
        if resp["op"] != "compile" or not resp["ok"]:
            fail(f"{name} compile did not succeed: {resp}")
        if resp["exit_code"] != 0:
            fail(f"{name} compile exit_code {resp['exit_code']}, expected 0")
    if cold["cached"]:
        fail("cold compile claims cached=true")
    if not warm["cached"]:
        fail("warm compile was not served from the cache")
    if warm["cache_key"] != cold["cache_key"]:
        fail(f"cache keys differ: {cold['cache_key']} vs "
             f"{warm['cache_key']}")

    # Byte-identity: strip the fields that legitimately differ and compare
    # the canonicalized rest.
    def canon(resp):
        return json.dumps(
            {k: v for k, v in resp.items() if k not in ("cached", "id")},
            sort_keys=True)
    if canon(warm) != canon(cold):
        fail("warm response is not byte-identical to cold "
             "(modulo 'cached' and 'id')")

    serve = stats.get("serve")
    if not isinstance(serve, dict):
        fail(f"stats response without a serve tree: {stats}")
    if serve["cache"]["hits"] < 1:
        fail(f"stats reports no cache hit: {serve['cache']}")
    if serve["requests"] < 2:
        fail(f"stats reports {serve['requests']} requests, expected >= 2")
    return 0


def run_once(args, requests):
    text = "".join(json.dumps(r) + "\n" for r in requests)
    proc = subprocess.run([args.serve_bin, "--once"], input=text,
                          capture_output=True, text=True, timeout=120)
    if proc.returncode != 0:
        fail(f"gcsafe-serve --once exited {proc.returncode}: {proc.stderr}")
    lines = [l for l in proc.stdout.splitlines() if l.strip()]
    if len(lines) != len(requests):
        fail(f"{len(lines)} response lines for {len(requests)} requests")
    return lines


def read_line(conn):
    buf = b""
    while not buf.endswith(b"\n"):
        chunk = conn.recv(65536)
        if not chunk:
            fail("connection closed mid-response")
        buf += chunk
    return buf.decode()


def ask(conn, request):
    conn.sendall((json.dumps(request) + "\n").encode())
    return read_line(conn).rstrip("\n")


def run_socket(args, requests):
    ping, cold, warm, stats, bye = requests
    # Unix socket paths are length-limited; stay short under /tmp.
    with tempfile.TemporaryDirectory(prefix="gcsafe-",
                                     dir="/tmp") as tmp:
        path = os.path.join(tmp, "serve.sock")
        daemon = subprocess.Popen(
            [args.serve_bin, f"--socket={path}", "--workers=2"],
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        try:
            deadline = time.monotonic() + 30
            while not os.path.exists(path):
                if time.monotonic() > deadline:
                    fail("daemon never created the socket")
                if daemon.poll() is not None:
                    fail(f"daemon exited early with {daemon.returncode}")
                time.sleep(0.05)

            lines = []
            # Connection 1: ping + cold compile.
            with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as c1:
                c1.connect(path)
                lines.append(ask(c1, ping))
                lines.append(ask(c1, cold))
            # Connection 2: the warm hit must come from the shared cache.
            with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as c2:
                c2.connect(path)
                lines.append(ask(c2, warm))
                lines.append(ask(c2, stats))
                lines.append(ask(c2, bye))

            code = daemon.wait(timeout=30)
            if code != 0:
                fail(f"daemon exited {code} after shutdown, expected 0")
            if os.path.exists(path):
                fail("daemon left its socket behind")
            return lines
        finally:
            if daemon.poll() is None:
                daemon.kill()
                daemon.wait()


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    transport = parser.add_mutually_exclusive_group(required=True)
    transport.add_argument("--once", action="store_true",
                           help="drive gcsafe-serve --once over stdin")
    transport.add_argument("--socket", action="store_true",
                           help="drive a gcsafe-serve unix-socket daemon")
    parser.add_argument("--serve-bin", required=True,
                        help="path to the gcsafe-serve binary")
    parser.add_argument("--source", required=True,
                        help="C source file to compile through the service")
    parser.add_argument("--out", required=True,
                        help="write the raw response lines here (for "
                             "check_bench_json.py --serve)")
    args = parser.parse_args()

    source = Path(args.source).read_text()
    requests = build_requests(source)
    lines = run_once(args, requests) if args.once else run_socket(args,
                                                                  requests)
    Path(args.out).write_text("".join(l + "\n" for l in lines))

    responses = []
    for n, line in enumerate(lines, 1):
        try:
            responses.append(json.loads(line))
        except json.JSONDecodeError as exc:
            fail(f"response line {n} is not JSON: {exc}")
    check_session(responses)
    transport_name = "--once" if args.once else "--socket"
    print(f"serve_client_test: ok ({transport_name}, "
          f"{len(responses)} responses, warm hit verified)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
